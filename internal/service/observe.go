package service

// Service-side observability wiring: the metrics registry behind GET
// /metrics, per-query trace plumbing, and the slow-query log behind
// GET /debug/slow. The serving counters live here as registry-backed
// obs.Counters (one atomic add each, same cost as the raw atomics they
// replaced), so the Prometheus surface and the /stats JSON snapshot
// read the same source and cannot drift.

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
)

// telemetry bundles the service's observability state: the registry,
// its counter/histogram handles, the slow-query log, and the trace
// sampler.
type telemetry struct {
	reg  *obs.Registry
	slow *obs.SlowLog

	// sampleEvery traces 1-in-N queries when no explicit trace was
	// requested (0 = sampling off); derived from Config.TraceSample.
	sampleEvery int64
	queryCount  atomic.Int64
	traceSeq    atomic.Int64

	// Serving counters (the registry-backed successors of the old raw
	// atomics; Stats() reads them back via Value()).
	admitted, rejected, coalesced *obs.Counter
	completed, failed             *obs.Counter
	appends, appendedRows         *obs.Counter
	scatterQueries, scatterTasks  *obs.Counter
	knnQueries                    *obs.Counter
	traced                        *obs.Counter

	// Fault-tolerance counters: fragments hedged to another replica,
	// fragment attempts retried after an error, and partial (degraded)
	// responses served under a dead shard.
	hedgedFragments *obs.Counter
	fragmentRetries *obs.Counter
	degradedQueries *obs.Counter

	// admissionShed counts requests rejected by the adaptive gate while
	// the queue still had physical room (expensive queries past the
	// effective depth, appends past the write gate) — the deliberate
	// load-shedding slice of rejected.
	admissionShed *obs.Counter

	// Latency and shape distributions.
	queryDur  *obs.Histogram // full Query wall time (matches client-side)
	appendDur *obs.Histogram
	queueWait *obs.Histogram // admission-queue wait, every executed task
	batchWait *obs.Histogram // batcher submit->launch wait (traced queries)
	fanout    *obs.Histogram // scatter wave width per scattered query
	// fragmentDur feeds the hedge budget: its live p99 (with headroom)
	// decides when a slow fragment is raced against another replica.
	fragmentDur *obs.Histogram
}

// newTelemetry builds the registry and registers every family. Gauges
// close over the service and read live state at scrape time.
func newTelemetry(s *Service, cfg Config) *telemetry {
	r := obs.NewRegistry()
	t := &telemetry{
		reg:  r,
		slow: obs.NewSlowLog(cfg.SlowQueryThreshold, cfg.SlowLogEntries),

		admitted:       r.Counter("deeplens_queries_admitted_total", "Queries admitted to the worker queue.", nil),
		rejected:       r.Counter("deeplens_queries_rejected_total", "Queries rejected by admission-queue overflow.", nil),
		coalesced:      r.Counter("deeplens_queries_coalesced_total", "Queries coalesced onto an identical in-flight execution.", nil),
		completed:      r.Counter("deeplens_queries_completed_total", "Queries executed to completion.", nil),
		failed:         r.Counter("deeplens_queries_failed_total", "Queries that failed during execution.", nil),
		appends:        r.Counter("deeplens_appends_total", "Append requests committed.", nil),
		appendedRows:   r.Counter("deeplens_appended_rows_total", "Rows committed through the append path.", nil),
		scatterQueries: r.Counter("deeplens_scatter_queries_total", "Queries executed via scatter-gather.", nil),
		scatterTasks:   r.Counter("deeplens_scatter_tasks_total", "Scatter fragments fanned out (filter + join tasks).", nil),
		knnQueries:     r.Counter("deeplens_knn_queries_total", "kNN queries executed (cold; cache hits excluded).", nil),
		traced:         r.Counter("deeplens_traced_queries_total", "Queries with full span capture (requested or sampled).", nil),

		hedgedFragments: r.Counter("deeplens_hedged_fragments_total", "Scatter fragments hedged to another replica after the latency budget.", nil),
		fragmentRetries: r.Counter("deeplens_fragment_retries_total", "Scatter fragment attempts retried after an error.", nil),
		degradedQueries: r.Counter("deeplens_degraded_queries_total", "Queries answered partially (allow_partial with every replica of a shard down).", nil),

		admissionShed: r.Counter("deeplens_admission_shed_total", "Requests shed by the adaptive admission gate (expensive queries past the effective depth, appends past the write gate).", nil),

		queryDur:    r.Histogram("deeplens_query_duration_seconds", "Query wall time, admission to response.", nil, obs.DefaultLatencyBuckets),
		appendDur:   r.Histogram("deeplens_append_duration_seconds", "Append request wall time.", nil, obs.DefaultLatencyBuckets),
		queueWait:   r.Histogram("deeplens_queue_wait_seconds", "Admission-queue wait before a worker picks the task up.", nil, obs.DefaultLatencyBuckets),
		batchWait:   r.Histogram("deeplens_batch_wait_seconds", "Kernel submit-to-launch wait in the batcher (traced queries only).", nil, obs.DefaultLatencyBuckets),
		fanout:      r.Histogram("deeplens_scatter_fanout", "Scatter wave width (shards) per scattered query.", nil, obs.FanoutBuckets),
		fragmentDur: r.Histogram("deeplens_fragment_duration_seconds", "Scatter fragment attempt wall time (successful attempts; feeds the hedge budget p99).", nil, obs.DefaultLatencyBuckets),
	}
	if cfg.TraceSample > 0 {
		n := int64(1.0/cfg.TraceSample + 0.5)
		if n < 1 {
			n = 1
		}
		t.sampleEvery = n
	}

	r.GaugeFunc("deeplens_uptime_seconds", "Seconds since the service started.", nil,
		func() float64 { return time.Since(s.start).Seconds() })
	r.GaugeFunc("deeplens_workers", "Executor pool size.", nil,
		func() float64 { return float64(s.cfg.Workers) })
	r.GaugeFunc("deeplens_queue_capacity", "Admission queue capacity.", nil,
		func() float64 { return float64(cap(s.queue)) })
	r.GaugeFunc("deeplens_queue_depth", "Admitted-but-unclaimed tasks.", nil,
		func() float64 { return float64(len(s.queue)) })
	r.GaugeFunc("deeplens_in_flight", "Tasks admitted and not yet finished.", nil,
		func() float64 { return float64(s.inFlight.Load()) })
	r.GaugeFunc("deeplens_peak_in_flight", "High-water mark of in-flight tasks.", nil,
		func() float64 { return float64(s.peakInFlight.Load()) })
	r.GaugeFunc("deeplens_shards", "Backing partition count.", nil, func() float64 {
		if s.shards != nil {
			return float64(s.shards.NumShards())
		}
		return 1
	})
	r.GaugeFunc("deeplens_replicas", "Per-shard replica count.", nil, func() float64 {
		if s.shards != nil {
			return float64(s.shards.Replicas())
		}
		return 1
	})
	r.CounterFunc("deeplens_replica_append_errors_total", "Secondary-replica append failures absorbed (each demotes the replica from the read set).", nil, func() float64 {
		if s.shards != nil {
			return float64(s.shards.ReplicaAppendErrors())
		}
		return 0
	})
	r.GaugeFunc("deeplens_out_of_sync_replicas", "Replicas currently demoted from the read set.", nil, func() float64 {
		if s.shards == nil {
			return 0
		}
		n := 0
		for i := 0; i < s.shards.NumShards(); i++ {
			n += s.shards.Replicas() - len(s.shards.InSyncReplicas(i))
		}
		return float64(n)
	})
	r.CounterFunc("deeplens_replica_resyncs_total", "Completed replica repairs (each re-promoted a demoted replica into the read set).", nil, func() float64 {
		if s.shards == nil {
			return 0
		}
		n, _ := s.shards.ResyncStats()
		return float64(n)
	})
	r.CounterFunc("deeplens_resync_rows_total", "Patches streamed to demoted replicas by repairs.", nil, func() float64 {
		if s.shards == nil {
			return 0
		}
		_, rows := s.shards.ResyncStats()
		return float64(rows)
	})
	r.GaugeFunc("deeplens_admission_queue_cost_seconds", "Summed priced cost (estimated seconds of work) of the tasks currently queued.", nil,
		func() float64 { return s.adm.QueuedCostSec() })
	r.GaugeFunc("deeplens_admission_effective_depth", "Adaptive queue bound derived from the observed drain rate.", nil,
		func() float64 { return float64(s.adm.effectiveDepth()) })

	for _, c := range []struct {
		label string
		cache *Cache
	}{{"result", s.results}, {"udf", s.udfMemo}} {
		cache := c.cache
		lbl := map[string]string{"cache": c.label}
		r.GaugeFunc("deeplens_cache_hit_rate", "Cache hits / (hits + misses).", lbl,
			func() float64 { return cache.Stats().HitRate() })
		r.GaugeFunc("deeplens_cache_bytes", "Accounted bytes held.", lbl,
			func() float64 { return float64(cache.Stats().Bytes) })
		r.GaugeFunc("deeplens_cache_entries", "Live entries.", lbl,
			func() float64 { return float64(cache.Stats().Entries) })
	}

	r.GaugeFunc("deeplens_batcher_fusion_factor", "Mean kernels per fused launch (1 = no fusion).", nil, func() float64 {
		var bs exec.BatcherStats
		for _, b := range s.batchers {
			bs.Add(b.BatcherStats())
		}
		return bs.FusionFactor()
	})
	r.GaugeFunc("deeplens_column_extend_reuse_ratio", "Sealed blocks reused / total blocks across incremental column extends.", nil, func() float64 {
		_, reused, total := s.columnExtendStats()
		if total == 0 {
			return 0
		}
		return float64(reused) / float64(total)
	})
	r.CounterFunc("deeplens_column_extends_total", "Incremental column-store extensions performed.", nil, func() float64 {
		n, _, _ := s.columnExtendStats()
		return float64(n)
	})
	r.CounterFunc("deeplens_segment_spills_total", "Sealed column segments written through the kv pager by the tiered column store.", nil, func() float64 {
		return float64(s.segCache.Stats().Spills)
	})
	r.CounterFunc("deeplens_segment_loads_total", "Cold column segments read back from disk.", nil, func() float64 {
		return float64(s.segCache.Stats().Loads)
	})
	r.CounterFunc("deeplens_segment_load_faults_total", "Unreadable spilled segments rebuilt from the row snapshot.", nil, func() float64 {
		return float64(s.segCache.Stats().LoadFaults)
	})
	r.CounterFunc("deeplens_segment_evictions_total", "Resident column segments dropped under memory-budget pressure.", nil, func() float64 {
		return float64(s.segCache.Stats().Evictions)
	})
	r.GaugeFunc("deeplens_segment_resident_bytes", "Bytes of spilled column segments currently resident.", nil, func() float64 {
		return float64(s.segCache.Stats().ResidentBytes)
	})
	r.CounterFunc("deeplens_index_extends_total", "Incremental vector-index extensions performed (prefix-certified appends).", nil, func() float64 {
		n, _ := s.indexExtendStats()
		return float64(n)
	})
	r.CounterFunc("deeplens_index_rebuilds_total", "Full vector-index builds (first touch or a shape change an extension could not absorb).", nil, func() float64 {
		_, n := s.indexExtendStats()
		return float64(n)
	})
	r.CounterFunc("deeplens_device_kernels_total", "Kernels executed across the device pool.", nil,
		func() float64 { return float64(s.devPool.Stats().Kernels) })
	r.CounterFunc("deeplens_device_launches_total", "Device launches issued (fusion shows as launches < kernels).", nil,
		func() float64 { return float64(s.devPool.Stats().Launches) })
	r.CounterFunc("deeplens_device_overhead_seconds_total", "Simulated launch + transfer overhead paid.", nil,
		func() float64 { return s.devPool.Stats().Overhead.Seconds() })
	r.CounterFunc("deeplens_merge_seconds_total", "Cumulative scatter gather/merge wall time.", nil,
		func() float64 { return float64(s.mergeNS.Load()) / 1e9 })
	return t
}

// columnExtendStats reads the backend's extend counters regardless of
// sharding.
func (s *Service) columnExtendStats() (extends, reused, total int64) {
	if s.shards != nil {
		return s.shards.ColumnExtendStats()
	}
	return s.db.ColumnExtendStats()
}

// indexExtendStats reads the backend's vector-index maintenance
// counters regardless of sharding.
func (s *Service) indexExtendStats() (extends, rebuilds int64) {
	if s.shards != nil {
		return s.shards.IndexExtendStats()
	}
	return s.db.IndexExtendStats()
}

// startTrace decides whether this query gets full span capture: an
// explicit "trace": true request always does, and the stride sampler
// captures 1-in-N of the rest. Returns nil (all span ops no-op) when
// neither applies.
func (t *telemetry) startTrace(req *Request) *obs.Trace {
	sampled := false
	if t.sampleEvery > 0 {
		sampled = (t.queryCount.Add(1)-1)%t.sampleEvery == 0
	}
	if !req.Trace && !sampled {
		return nil
	}
	t.traced.Inc()
	return obs.NewTrace(fmt.Sprintf("q-%06d", t.traceSeq.Add(1)))
}

// finishQuery records a successful query's terminal telemetry: the
// latency histogram, the slow-query log (with the trace attached when
// one was captured), and — only for explicitly requested traces — a
// caller-private response copy carrying the trace. Cached and
// coalesced responses are shared objects, so the trace is never
// attached in place.
func (t *telemetry) finishQuery(resp *Response, req *Request, tr *obs.Trace, dur time.Duration) *Response {
	t.queryDur.Observe(dur.Seconds())
	if tr == nil {
		t.slow.Observe(dur, req.describe(), resp.Fingerprint, nil)
		return resp
	}
	data := tr.Data()
	t.slow.Observe(dur, req.describe(), resp.Fingerprint, data)
	if !req.Trace {
		return resp
	}
	out := *resp
	out.TraceID = data.ID
	out.TraceData = data
	return &out
}

// kernelObserver bridges exec's per-kernel callbacks into trace spans
// and the batch-wait histogram. The span's start is reconstructed from
// the reported wait, so it lines up with the submit that incurred it.
type kernelObserver struct {
	t  *telemetry
	tr *obs.Trace
}

func (k kernelObserver) ObserveKernel(op string, wait time.Duration, batch int) {
	k.t.batchWait.Observe(wait.Seconds())
	k.tr.AddSpan("batch-wait", time.Now().Add(-wait), wait, map[string]string{
		"op":    op,
		"batch": fmt.Sprintf("%d", batch),
	})
}

// observedDev returns the device joins should submit kernels through:
// the raw batcher when untraced (zero added cost), or an observing
// wrapper that records one batch-wait span per kernel when traced.
func (s *Service) observedDev(b *exec.Batcher, tr *obs.Trace) exec.Device {
	if tr == nil {
		return b
	}
	return b.Observed(kernelObserver{t: s.tel, tr: tr})
}

// describe renders a compact human-readable form of the request for
// the slow-query log.
func (r *Request) describe() string {
	if r.Infer != nil {
		return fmt.Sprintf("infer %s[%d:%d) %s", r.Infer.Source, r.Infer.From, r.Infer.To, r.Infer.UDF)
	}
	out := r.Collection
	if f := r.Filter; f != nil {
		if f.isRange() {
			lo, hi := f.bounds()
			out += fmt.Sprintf(" filter(%s in [%g,%g))", f.Field, lo, hi)
		} else if v, err := f.value(); err == nil {
			out += fmt.Sprintf(" filter(%s=%v)", f.Field, v)
		}
	}
	if r.SimJoin != nil {
		out += fmt.Sprintf(" simjoin(%s, eps=%g)", r.SimJoin.Field, r.SimJoin.Eps)
	}
	if q := r.KNN; q != nil {
		out += fmt.Sprintf(" knn(%s, k=%d)", q.Field, q.K)
	}
	if r.Distinct {
		out += " distinct"
	}
	if r.OrderBy != "" {
		out += " order-by(" + r.OrderBy + ")"
	}
	if r.Limit > 0 {
		out += fmt.Sprintf(" limit(%d)", r.Limit)
	}
	return out
}
