package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
)

// Live-ingest tests: the streaming append path end to end — spec
// conversion, storage routing, cache invalidation, the incremental
// columnar extension it triggers on the next query, and the sharded
// invariance contracts.

// specFromPatch converts a synthetic patch into the JSON-shaped spec a
// client would POST.
func specFromPatch(p *core.Patch) PatchSpec {
	meta := make(map[string]any, len(p.Meta))
	for k, v := range p.Meta {
		switch v.Kind {
		case core.KindInt:
			meta[k] = float64(v.I)
		case core.KindFloat:
			meta[k] = v.F
		case core.KindStr:
			meta[k] = v.S
		case core.KindVec, core.KindRect:
			vec := make([]any, len(v.V))
			for i, f := range v.V {
				vec[i] = float64(f)
			}
			meta[k] = vec
		}
	}
	return PatchSpec{Source: p.Ref.Source, Frame: p.Ref.Frame, Meta: meta}
}

// appendSynth streams rows [from, to) through Service.Append in
// frame-sized batches.
func appendSynth(t *testing.T, svc *Service, from, to, batch int) {
	t.Helper()
	for i := from; i < to; i += batch {
		req := AppendRequest{Collection: shardTestCol}
		for j := i; j < to && j < i+batch; j++ {
			req.Patches = append(req.Patches, specFromPatch(synthPatch(j)))
		}
		resp, err := svc.Append(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Appended != len(req.Patches) || len(resp.IDs) != resp.Appended {
			t.Fatalf("append committed %d of %d", resp.Appended, len(req.Patches))
		}
	}
}

// TestAppendThenQueryExtends is the acceptance scenario: after a warm
// columnar query, appending one block's worth of rows must leave the
// next query extending the store in place — sealed blocks reused, the
// result byte-identical to a fresh build — with the counters visible in
// Stats.
func TestAppendThenQueryExtends(t *testing.T) {
	base := 2*core.ColumnBlockSize + 400
	db, svc := synthUnsharded(t, base, Config{Workers: 2})
	ctx := context.Background()
	str := func(s string) *string { return &s }
	filter := Request{Collection: shardTestCol,
		Filter: &FilterSpec{Field: "label", Str: str("car")}, NoCache: true}
	topk := Request{Collection: shardTestCol, OrderBy: "score", Limit: 5, NoCache: true}

	// Warm the columnar store (projects label and score).
	if _, err := svc.Query(ctx, filter); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Query(ctx, topk); err != nil {
		t.Fatal(err)
	}

	appendSynth(t, svc, base, base+core.ColumnBlockSize, 64)
	st := svc.Stats()
	if st.Appends != (core.ColumnBlockSize+63)/64 || st.AppendedRows != int64(core.ColumnBlockSize) {
		t.Fatalf("append counters %d/%d", st.Appends, st.AppendedRows)
	}

	r, err := svc.Query(ctx, filter)
	if err != nil {
		t.Fatal(err)
	}
	want := (base + core.ColumnBlockSize + 2) / 3 // labels cycle car/ped/bus
	if r.Value != want {
		t.Fatalf("post-append car count %d, want %d", r.Value, want)
	}
	st = svc.Stats()
	if st.ColumnExtends < 1 {
		t.Fatal("query after appends rebuilt the store instead of extending")
	}
	if st.ExtendTotalBlocks == 0 ||
		float64(st.ExtendReuseBlocks)/float64(st.ExtendTotalBlocks) < 2.0/3.0 {
		t.Fatalf("sealed-block reuse %d/%d below the 2-sealed-of-3 floor",
			st.ExtendReuseBlocks, st.ExtendTotalBlocks)
	}

	// Byte-identical to a fresh store over the same snapshot.
	col, err := db.Collection(shardTestCol)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := col.Columns()
	if err != nil {
		t.Fatal(err)
	}
	fresh := core.NewColumnStore(cs.Patches(), cs.Version())
	for _, field := range []string{"label", "score"} {
		se, _ := cs.FilterEq(field, core.StrV("car"))
		sf, _ := fresh.FilterEq(field, core.StrV("car"))
		if !reflect.DeepEqual(se, sf) {
			t.Fatalf("extended %s selection diverges from fresh build", field)
		}
		te, _ := cs.TopK(nil, field, false, 20)
		tf, _ := fresh.TopK(nil, field, false, 20)
		if !reflect.DeepEqual(te, tf) {
			t.Fatalf("extended %s top-k diverges from fresh build", field)
		}
	}
}

// TestAppendInvalidatesResultCache: an append must drop the cached
// results of exactly its collection (precise prefix invalidation) and
// the next query must re-execute at the new version.
func TestAppendInvalidatesResultCache(t *testing.T) {
	_, svc := synthUnsharded(t, 120, Config{Workers: 1})
	req := Request{Collection: shardTestCol}
	r1 := mustQuery(t, svc, req)
	if r2 := mustQuery(t, svc, req); !r2.CacheHit {
		t.Fatal("warm query missed")
	}
	if svc.Stats().ResultCache.Entries == 0 {
		t.Fatal("nothing cached")
	}
	appendSynth(t, svc, 120, 121, 1)
	if svc.Stats().ResultCache.Entries != 0 {
		t.Fatal("append left the collection's cached results resident")
	}
	r3 := mustQuery(t, svc, req)
	if r3.CacheHit || r3.Value != 121 || r3.Fingerprint == r1.Fingerprint {
		t.Fatalf("post-append query stale: hit=%v value=%d", r3.CacheHit, r3.Value)
	}
}

// TestAppendHTTP drives the /append endpoint over the wire: single and
// batched bodies, error mapping, and the /stats ingest counters.
func TestAppendHTTP(t *testing.T) {
	_, svc := synthUnsharded(t, 30, Config{Workers: 1})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	post := func(t *testing.T, path string, body any) (*http.Response, map[string]any) {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp, out
	}

	// Single-patch form.
	resp, out := post(t, "/append", AppendRequest{
		Collection: shardTestCol, Patch: ptr(specFromPatch(synthPatch(30)))})
	if resp.StatusCode != http.StatusOK || out["appended"].(float64) != 1 {
		t.Fatalf("single append: %d %v", resp.StatusCode, out)
	}
	// Batched frame-at-a-time form.
	batch := AppendRequest{Collection: shardTestCol}
	for i := 31; i < 41; i++ {
		batch.Patches = append(batch.Patches, specFromPatch(synthPatch(i)))
	}
	resp, out = post(t, "/append", batch)
	if resp.StatusCode != http.StatusOK || out["appended"].(float64) != 10 {
		t.Fatalf("batch append: %d %v", resp.StatusCode, out)
	}
	if ids := out["ids"].([]any); len(ids) != 10 {
		t.Fatalf("batch ids %d", len(ids))
	}

	// The appended rows serve immediately.
	resp, out = post(t, "/query", Request{Collection: shardTestCol})
	if resp.StatusCode != http.StatusOK || out["value"].(float64) != 41 {
		t.Fatalf("post-append query: %d %v", resp.StatusCode, out)
	}

	// Error mapping: unknown collection 404, schema violation 400,
	// malformed body 400, missing patches 400.
	resp, _ = post(t, "/append", AppendRequest{Collection: "nope",
		Patch: ptr(specFromPatch(synthPatch(0)))})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown collection -> %d", resp.StatusCode)
	}
	bad := specFromPatch(synthPatch(0))
	bad.Meta["label"] = 3.5 // declared str
	resp, _ = post(t, "/append", AppendRequest{Collection: shardTestCol, Patch: &bad})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("schema violation -> %d", resp.StatusCode)
	}
	resp, _ = post(t, "/append", AppendRequest{Collection: shardTestCol})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty append -> %d", resp.StatusCode)
	}
	httpResp, err := http.Post(srv.URL+"/append", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body -> %d", httpResp.StatusCode)
	}

	// Stats surface the ingest counters.
	statsResp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st["appends"].(float64) != 2 || st["appended_rows"].(float64) != 11 {
		t.Fatalf("stats appends %v rows %v", st["appends"], st["appended_rows"])
	}
}

func ptr[T any](v T) *T { return &v }

// TestAppendShardedN1Golden: the full query matrix stays byte-identical
// between unsharded and one-shard services after both ingest the same
// live stream through Append.
func TestAppendShardedN1Golden(t *testing.T) {
	const base, extra = 150, 90
	cfg := Config{Workers: 2}
	_, plain := synthUnsharded(t, base, cfg)
	_, sharded := synthSharded(t, 1, base, cfg)
	appendSynth(t, plain, base, base+extra, 16)
	appendSynth(t, sharded, base, base+extra, 16)
	ctx := context.Background()
	for qi, req := range queryMatrix() {
		pr, err := plain.Query(ctx, req)
		if err != nil {
			t.Fatalf("query %d unsharded: %v", qi, err)
		}
		sr, err := sharded.Query(ctx, req)
		if err != nil {
			t.Fatalf("query %d sharded N=1: %v", qi, err)
		}
		if pg, sg := goldenKey(t, pr), goldenKey(t, sr); pg != sg {
			t.Errorf("query %d diverges after live ingest:\n  unsharded: %s\n  sharded-1: %s", qi, pg, sg)
		}
	}
}

// TestAppendRoutedShardInvariance: a three-shard service fed the same
// append stream (hash-routed placement) answers every matrix query with
// the unsharded values, and its shards together hold exactly the
// appended rows.
func TestAppendRoutedShardInvariance(t *testing.T) {
	const base, extra = 150, 120
	cfg := Config{Workers: 2}
	_, plain := synthUnsharded(t, base, cfg)
	sdb, sharded := synthSharded(t, 3, base, cfg)
	appendSynth(t, plain, base, base+extra, 8)
	appendSynth(t, sharded, base, base+extra, 8)

	sc, err := sdb.Collection(shardTestCol)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Len() != base+extra {
		t.Fatalf("sharded rows %d, want %d", sc.Len(), base+extra)
	}
	perShard := make([]int, 3)
	for i := 0; i < 3; i++ {
		perShard[i] = sc.Shard(i).Len()
	}
	sort.Ints(perShard)
	if perShard[0] == 0 {
		t.Fatalf("append routing starved a shard: %v", perShard)
	}

	ctx := context.Background()
	for qi, req := range queryMatrix() {
		pr, err := plain.Query(ctx, req)
		if err != nil {
			t.Fatalf("query %d unsharded: %v", qi, err)
		}
		sr, err := sharded.Query(ctx, req)
		if err != nil {
			t.Fatalf("query %d sharded N=3: %v", qi, err)
		}
		if pr.Value != sr.Value {
			t.Errorf("query %d: sharded value %d, unsharded %d (plan %s)", qi, sr.Value, pr.Value, sr.Plan)
		}
	}
}

// TestAppendQueryExtendHammer races streaming appends against columnar
// queries on an extension-warm store: under -race this is the torn-read
// check for Extend; semantically every observed count must correspond
// to a complete snapshot.
func TestAppendQueryExtendHammer(t *testing.T) {
	base := core.ColumnBlockSize + 200
	extra := core.ColumnBlockSize
	_, svc := synthUnsharded(t, base, Config{Workers: 4, QueueDepth: 128})
	ctx := context.Background()
	str := func(s string) *string { return &s }
	reqs := []Request{
		{Collection: shardTestCol, Filter: &FilterSpec{Field: "label", Str: str("car")}, NoCache: true},
		{Collection: shardTestCol, OrderBy: "score", Desc: true, Limit: 7, NoCache: true},
		{Collection: shardTestCol, Filter: &FilterSpec{Field: "rank", Min: fp(1), Max: fp(4)}, NoCache: true},
	}
	// Warm the store so the hammer exercises Extend, not first builds.
	for _, req := range reqs {
		if _, err := svc.Query(ctx, req); err != nil {
			t.Fatal(err)
		}
	}

	// Both sides run fixed quotas rather than until-the-other-finishes:
	// on a single-core scheduler a tight query loop can starve the
	// appender indefinitely (channel wakeups keep the ping-ponging pair
	// in the run queue's preferred slot), turning a coupled termination
	// condition into a livelock. Bounded loops interleave freely on
	// multicore and still terminate on one.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := base; i < base+extra; i += 32 {
			req := AppendRequest{Collection: shardTestCol}
			for j := i; j < i+32 && j < base+extra; j++ {
				req.Patches = append(req.Patches, specFromPatch(synthPatch(j)))
			}
			if _, err := svc.Append(ctx, req); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				req := reqs[(w+i)%len(reqs)]
				r, err := svc.Query(ctx, req)
				if err != nil {
					t.Error(err)
					return
				}
				if req.Filter != nil && req.Filter.Str != nil {
					// Labels cycle with period 3: any complete snapshot's car
					// count lies within the stream's bounds.
					if r.Value < base/3 || r.Value > (base+extra)/3+1 {
						t.Errorf("torn columnar read: %d cars", r.Value)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	final := mustQuery(t, svc, Request{Collection: shardTestCol, NoCache: true})
	if final.Value != base+extra {
		t.Fatalf("post-hammer count %d, want %d", final.Value, base+extra)
	}
	if st := svc.Stats(); st.ColumnExtends == 0 {
		t.Error("hammer never exercised the extension path")
	}
}

// TestAppendPartialBatchRejectedAtomically: a batch with one malformed
// spec must commit nothing.
func TestAppendPartialBatchRejectedAtomically(t *testing.T) {
	_, svc := synthUnsharded(t, 40, Config{Workers: 1})
	req := AppendRequest{Collection: shardTestCol}
	for i := 40; i < 44; i++ {
		req.Patches = append(req.Patches, specFromPatch(synthPatch(i)))
	}
	req.Patches[2].Meta["score"] = "not-a-number" // declared float
	if _, err := svc.Append(context.Background(), req); err == nil {
		t.Fatal("malformed batch accepted")
	}
	if got := mustQuery(t, svc, Request{Collection: shardTestCol, NoCache: true}).Value; got != 40 {
		t.Fatalf("malformed batch partially committed: %d rows", got)
	}
	if st := svc.Stats(); st.Appends != 0 || st.AppendedRows != 0 {
		t.Fatalf("rejected batch counted: %d/%d", st.Appends, st.AppendedRows)
	}
}

// TestMetaValueCoercion pins the JSON-to-Value mapping.
func TestMetaValueCoercion(t *testing.T) {
	schema := synthSchema()
	cases := []struct {
		field string
		in    any
		want  core.Value
		fail  bool
	}{
		{"label", "car", core.StrV("car"), false},
		{"score", 2.5, core.FloatV(2.5), false},
		{"rank", 3.0, core.IntV(3), false},
		{"rank", 3.5, core.Value{}, true},    // fractional into declared int
		{"rank", 1e19, core.Value{}, true},   // past MaxInt64: conversion would be garbage
		{"rank", 9.1e15, core.Value{}, true}, // past 2^53: float64 no longer exact
		{"emb", []any{1.0, 2.0}, core.VecV([]float32{1, 2}), false},
		{"undeclared_int", 7.0, core.IntV(7), false},
		{"undeclared_float", 7.25, core.FloatV(7.25), false},
		{"label", true, core.Value{}, true},
		{"emb", []any{"x"}, core.Value{}, true},
	}
	for _, tc := range cases {
		got, err := metaValue(schema, tc.field, tc.in)
		if tc.fail {
			if err == nil {
				t.Errorf("%s: %v accepted as %v", tc.field, tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", tc.field, err)
		} else if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: %v -> %+v, want %+v", tc.field, tc.in, got, tc.want)
		}
	}
}
