// Package kdtree implements a KD-tree over low/mid-dimensional point data.
// The paper's Example 2 sketches "a KD-Tree over a set of color histograms"
// as one physical design for cross-video matching; DeepLens offers it
// alongside the ball tree so the optimizer (and the Figure 7 ablation) can
// compare the two as dimensionality grows.
package kdtree

import (
	"fmt"
	"math"
	"sort"
)

// Point is an indexed vector with a caller-assigned identifier.
type Point struct {
	Vec []float32
	ID  uint64
}

type node struct {
	p           Point
	axis        int
	left, right *node
}

// Tree is an immutable KD-tree.
type Tree struct {
	dim  int
	root *node
	size int
}

// Build constructs a balanced KD-tree (median splits) over pts.
func Build(pts []Point) (*Tree, error) {
	if len(pts) == 0 {
		return &Tree{}, nil
	}
	dim := len(pts[0].Vec)
	for _, p := range pts {
		if len(p.Vec) != dim {
			return nil, fmt.Errorf("kdtree: mixed dimensions %d and %d", dim, len(p.Vec))
		}
	}
	cp := append([]Point(nil), pts...)
	return &Tree{dim: dim, root: build(cp, 0, dim), size: len(pts)}, nil
}

func build(pts []Point, depth, dim int) *node {
	if len(pts) == 0 {
		return nil
	}
	axis := depth % dim
	sort.Slice(pts, func(i, j int) bool { return pts[i].Vec[axis] < pts[j].Vec[axis] })
	mid := len(pts) / 2
	return &node{
		p:     pts[mid],
		axis:  axis,
		left:  build(pts[:mid], depth+1, dim),
		right: build(pts[mid+1:], depth+1, dim),
	}
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// Dim returns the dimensionality (0 when empty).
func (t *Tree) Dim() int { return t.dim }

func dist(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return math.Sqrt(s)
}

// RangeSearch calls fn for every point within Euclidean distance eps of q.
func (t *Tree) RangeSearch(q []float32, eps float64, fn func(Point, float64) bool) {
	if t.root != nil {
		rangeSearch(t.root, q, eps, fn)
	}
}

func rangeSearch(n *node, q []float32, eps float64, fn func(Point, float64) bool) bool {
	if n == nil {
		return true
	}
	if d := dist(n.p.Vec, q); d <= eps {
		if !fn(n.p, d) {
			return false
		}
	}
	planeDist := float64(q[n.axis]) - float64(n.p.Vec[n.axis])
	near, far := n.left, n.right
	if planeDist > 0 {
		near, far = n.right, n.left
	}
	if !rangeSearch(near, q, eps, fn) {
		return false
	}
	if math.Abs(planeDist) <= eps {
		return rangeSearch(far, q, eps, fn)
	}
	return true
}

// BoxSearch calls fn for every point inside the axis-aligned box [lo, hi].
func (t *Tree) BoxSearch(lo, hi []float32, fn func(Point) bool) {
	if t.root != nil {
		boxSearch(t.root, lo, hi, fn)
	}
}

func boxSearch(n *node, lo, hi []float32, fn func(Point) bool) bool {
	if n == nil {
		return true
	}
	inside := true
	for i := range lo {
		if n.p.Vec[i] < lo[i] || n.p.Vec[i] > hi[i] {
			inside = false
			break
		}
	}
	if inside && !fn(n.p) {
		return false
	}
	if n.p.Vec[n.axis] >= lo[n.axis] {
		if !boxSearch(n.left, lo, hi, fn) {
			return false
		}
	}
	if n.p.Vec[n.axis] <= hi[n.axis] {
		return boxSearch(n.right, lo, hi, fn)
	}
	return true
}

// NN returns the nearest neighbor of q and its distance; ok is false when
// the tree is empty.
func (t *Tree) NN(q []float32) (best Point, bestDist float64, ok bool) {
	if t.root == nil {
		return Point{}, 0, false
	}
	bestDist = math.Inf(1)
	nn(t.root, q, &best, &bestDist)
	return best, bestDist, true
}

func nn(n *node, q []float32, best *Point, bestDist *float64) {
	if n == nil {
		return
	}
	if d := dist(n.p.Vec, q); d < *bestDist {
		*best, *bestDist = n.p, d
	}
	planeDist := float64(q[n.axis]) - float64(n.p.Vec[n.axis])
	near, far := n.left, n.right
	if planeDist > 0 {
		near, far = n.right, n.left
	}
	nn(near, q, best, bestDist)
	if math.Abs(planeDist) < *bestDist {
		nn(far, q, best, bestDist)
	}
}
