package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randPoints(rng *rand.Rand, n, dim int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		v := make([]float32, dim)
		for d := range v {
			v[d] = float32(rng.NormFloat64())
		}
		pts[i] = Point{Vec: v, ID: uint64(i)}
	}
	return pts
}

func TestEmpty(t *testing.T) {
	tr, err := Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatal("non-empty")
	}
	if _, _, ok := tr.NN([]float32{0}); ok {
		t.Fatal("NN on empty tree reported ok")
	}
}

func TestMixedDims(t *testing.T) {
	if _, err := Build([]Point{{Vec: []float32{1}}, {Vec: []float32{1, 2}}}); err == nil {
		t.Fatal("mixed dims accepted")
	}
}

func TestRangeMatchesBrute(t *testing.T) {
	for _, dim := range []int{2, 3, 8} {
		rng := rand.New(rand.NewSource(int64(dim) * 7))
		pts := randPoints(rng, 2000, dim)
		tr, _ := Build(pts)
		for trial := 0; trial < 50; trial++ {
			q := make([]float32, dim)
			for d := range q {
				q[d] = float32(rng.NormFloat64())
			}
			eps := 0.3 + rng.Float64()
			var want, got []uint64
			for _, p := range pts {
				if dist(p.Vec, q) <= eps {
					want = append(want, p.ID)
				}
			}
			tr.RangeSearch(q, eps, func(p Point, _ float64) bool {
				got = append(got, p.ID)
				return true
			})
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if len(want) != len(got) {
				t.Fatalf("dim %d trial %d: %d results, want %d", dim, trial, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("dim %d trial %d: mismatch at %d", dim, trial, i)
				}
			}
		}
	}
}

func TestNNMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pts := randPoints(rng, 3000, 4)
	tr, _ := Build(pts)
	for trial := 0; trial < 100; trial++ {
		q := make([]float32, 4)
		for d := range q {
			q[d] = float32(rng.NormFloat64())
		}
		_, gotDist, ok := tr.NN(q)
		if !ok {
			t.Fatal("NN not ok")
		}
		best := math.Inf(1)
		for _, p := range pts {
			if d := dist(p.Vec, q); d < best {
				best = d
			}
		}
		if math.Abs(gotDist-best) > 1e-9 {
			t.Fatalf("trial %d: NN dist %g, want %g", trial, gotDist, best)
		}
	}
}

func TestBoxSearchMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := randPoints(rng, 2000, 3)
	tr, _ := Build(pts)
	for trial := 0; trial < 50; trial++ {
		lo := make([]float32, 3)
		hi := make([]float32, 3)
		for d := range lo {
			a := float32(rng.NormFloat64())
			b := a + float32(rng.Float64()*2)
			lo[d], hi[d] = a, b
		}
		var want, got int
		for _, p := range pts {
			inside := true
			for d := range lo {
				if p.Vec[d] < lo[d] || p.Vec[d] > hi[d] {
					inside = false
					break
				}
			}
			if inside {
				want++
			}
		}
		tr.BoxSearch(lo, hi, func(Point) bool { got++; return true })
		if want != got {
			t.Fatalf("trial %d: box search %d, want %d", trial, got, want)
		}
	}
}

func TestSelfNN(t *testing.T) {
	pts := randPoints(rand.New(rand.NewSource(8)), 500, 5)
	tr, _ := Build(pts)
	for _, p := range pts {
		_, d, ok := tr.NN(p.Vec)
		if !ok || d > 1e-9 {
			t.Fatalf("self NN for %d: dist %g ok=%v", p.ID, d, ok)
		}
	}
}
