package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndNumel(t *testing.T) {
	u := NewU8(2, 3, 4)
	if u.Numel() != 24 || len(u.U8s) != 24 || u.DType != U8 {
		t.Fatalf("NewU8: %+v", u)
	}
	f := NewF32(5)
	if f.Numel() != 5 || len(f.F32s) != 5 || f.DType != F32 {
		t.Fatalf("NewF32: %+v", f)
	}
	if u.Rank() != 3 || f.Rank() != 1 {
		t.Fatal("rank wrong")
	}
}

func TestFromPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromF32 with wrong shape did not panic")
		}
	}()
	FromF32(make([]float32, 5), 2, 3)
}

func TestIndexing(t *testing.T) {
	u := NewU8(2, 3, 4)
	u.SetU8(99, 1, 2, 3)
	if u.AtU8(1, 2, 3) != 99 {
		t.Fatal("set/get roundtrip")
	}
	if u.U8s[1*12+2*4+3] != 99 {
		t.Fatal("row-major layout wrong")
	}
	f := NewF32(3, 3)
	f.SetF32(1.5, 2, 1)
	if f.AtF32(2, 1) != 1.5 {
		t.Fatal("f32 set/get")
	}
}

func TestIndexOutOfRangePanics(t *testing.T) {
	u := NewU8(2, 2)
	for _, idx := range [][]int{{2, 0}, {0, -1}, {0}, {0, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("index %v did not panic", idx)
				}
			}()
			u.AtU8(idx...)
		}()
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewU8(4)
	a.U8s[0] = 7
	b := a.Clone()
	b.U8s[0] = 9
	if a.U8s[0] != 7 {
		t.Fatal("clone shares storage")
	}
	if !Equal(a, a.Clone()) {
		t.Fatal("clone not equal to source")
	}
}

func TestConversions(t *testing.T) {
	u := FromU8([]uint8{0, 128, 255}, 3)
	f := u.ToF32()
	if f.F32s[0] != 0 || f.F32s[2] != 1 {
		t.Fatalf("ToF32: %v", f.F32s)
	}
	back := f.ToU8()
	for i := range u.U8s {
		if int(back.U8s[i])-int(u.U8s[i]) > 1 || int(u.U8s[i])-int(back.U8s[i]) > 1 {
			t.Fatalf("round trip at %d: %d vs %d", i, u.U8s[i], back.U8s[i])
		}
	}
	// Clamping.
	over := FromF32([]float32{-1, 2}, 2).ToU8()
	if over.U8s[0] != 0 || over.U8s[1] != 255 {
		t.Fatalf("clamp: %v", over.U8s)
	}
	// Identity fast paths.
	if f.ToF32() != f || u.ToU8() != u {
		t.Fatal("identity conversion should return receiver")
	}
}

func TestEqual(t *testing.T) {
	a := FromF32([]float32{1, 2}, 2)
	b := FromF32([]float32{1, 2}, 2)
	c := FromF32([]float32{1, 3}, 2)
	d := FromF32([]float32{1, 2}, 1, 2)
	if !Equal(a, b) || Equal(a, c) || Equal(a, d) {
		t.Fatal("Equal broken")
	}
	if Equal(a, NewU8(2)) {
		t.Fatal("cross-dtype equal")
	}
}

func TestL2(t *testing.T) {
	a := FromF32([]float32{0, 0}, 2)
	b := FromF32([]float32{3, 4}, 2)
	if math.Abs(L2(a, b)-5) > 1e-9 {
		t.Fatalf("L2 = %f", L2(a, b))
	}
}

func TestPSNR(t *testing.T) {
	a := FromU8([]uint8{100, 100}, 2)
	if !math.IsInf(PSNR(a, a), 1) {
		t.Fatal("identical PSNR not +Inf")
	}
	b := FromU8([]uint8{110, 100}, 2)
	p := PSNR(a, b)
	if p < 20 || p > 40 {
		t.Fatalf("PSNR = %f", p)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var tt *Tensor
		if trial%2 == 0 {
			tt = NewU8(1+rng.Intn(5), 1+rng.Intn(5), 3)
			rng.Read(tt.U8s)
		} else {
			tt = NewF32(1 + rng.Intn(20))
			for i := range tt.F32s {
				tt.F32s[i] = float32(rng.NormFloat64())
			}
		}
		got, err := Unmarshal(tt.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(tt, got) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	good := NewU8(2, 2).Marshal()
	cases := [][]byte{
		nil,
		{1},
		{99, 0},                                 // bad dtype
		good[:len(good)-1],                      // truncated
		append(append([]byte(nil), good...), 0), // trailing garbage
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Fatalf("case %d decoded", i)
		}
	}
}

func TestQuickMarshal(t *testing.T) {
	f := func(data []byte, w uint8) bool {
		width := int(w%16) + 1
		n := (len(data) / width) * width
		if n == 0 {
			return true
		}
		tt := FromU8(data[:n], n/width, width)
		got, err := Unmarshal(tt.Marshal())
		return err == nil && Equal(tt, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
