// Package tensor provides dense n-dimensional arrays used as the Data
// payload of DeepLens patches. Two element types are supported: uint8
// (raw pixel content) and float32 (featurized content). Tensors are
// row-major and carry their shape; all index arithmetic is bounds-checked
// in the accessors used by callers that handle untrusted shapes.
package tensor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// DType identifies the element type of a Tensor.
type DType uint8

// Supported element types.
const (
	U8  DType = iota + 1 // unsigned 8-bit (pixels)
	F32                  // 32-bit float (features)
)

func (d DType) String() string {
	switch d {
	case U8:
		return "u8"
	case F32:
		return "f32"
	default:
		return fmt.Sprintf("dtype(%d)", uint8(d))
	}
}

// Tensor is a dense row-major n-dimensional array. Exactly one of U8s and
// F32s is non-nil, matching DType.
type Tensor struct {
	Shape []int
	DType DType
	U8s   []uint8
	F32s  []float32
}

// Numel returns the number of elements implied by shape.
func Numel(shape []int) int {
	n := 1
	for _, s := range shape {
		n *= s
	}
	return n
}

// NewU8 allocates a zeroed uint8 tensor with the given shape.
func NewU8(shape ...int) *Tensor {
	return &Tensor{Shape: append([]int(nil), shape...), DType: U8, U8s: make([]uint8, Numel(shape))}
}

// NewF32 allocates a zeroed float32 tensor with the given shape.
func NewF32(shape ...int) *Tensor {
	return &Tensor{Shape: append([]int(nil), shape...), DType: F32, F32s: make([]float32, Numel(shape))}
}

// FromF32 wraps data (not copied) in a tensor of the given shape.
func FromF32(data []float32, shape ...int) *Tensor {
	if len(data) != Numel(shape) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), DType: F32, F32s: data}
}

// FromU8 wraps data (not copied) in a tensor of the given shape.
func FromU8(data []uint8, shape ...int) *Tensor {
	if len(data) != Numel(shape) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), DType: U8, U8s: data}
}

// Numel returns the number of elements in t.
func (t *Tensor) Numel() int { return Numel(t.Shape) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{Shape: append([]int(nil), t.Shape...), DType: t.DType}
	if t.U8s != nil {
		c.U8s = append([]uint8(nil), t.U8s...)
	}
	if t.F32s != nil {
		c.F32s = append([]float32(nil), t.F32s...)
	}
	return c
}

// offset computes the linear offset of idx, panicking on rank mismatch or
// out-of-range coordinates.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d != tensor rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// AtU8 returns the uint8 element at idx.
func (t *Tensor) AtU8(idx ...int) uint8 { return t.U8s[t.offset(idx)] }

// SetU8 stores v at idx.
func (t *Tensor) SetU8(v uint8, idx ...int) { t.U8s[t.offset(idx)] = v }

// AtF32 returns the float32 element at idx.
func (t *Tensor) AtF32(idx ...int) float32 { return t.F32s[t.offset(idx)] }

// SetF32 stores v at idx.
func (t *Tensor) SetF32(v float32, idx ...int) { t.F32s[t.offset(idx)] = v }

// ToF32 converts t to an F32 tensor with values in [0,1] when t is U8, or
// returns t unchanged when it is already F32.
func (t *Tensor) ToF32() *Tensor {
	if t.DType == F32 {
		return t
	}
	out := NewF32(t.Shape...)
	for i, v := range t.U8s {
		out.F32s[i] = float32(v) / 255
	}
	return out
}

// ToU8 converts t to a U8 tensor, clamping F32 values assumed in [0,1].
func (t *Tensor) ToU8() *Tensor {
	if t.DType == U8 {
		return t
	}
	out := NewU8(t.Shape...)
	for i, v := range t.F32s {
		x := v * 255
		if x < 0 {
			x = 0
		}
		if x > 255 {
			x = 255
		}
		out.U8s[i] = uint8(x + 0.5)
	}
	return out
}

// Equal reports whether a and b have identical shape, dtype and contents.
func Equal(a, b *Tensor) bool {
	if a.DType != b.DType || len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	switch a.DType {
	case U8:
		if len(a.U8s) != len(b.U8s) {
			return false
		}
		for i := range a.U8s {
			if a.U8s[i] != b.U8s[i] {
				return false
			}
		}
	case F32:
		if len(a.F32s) != len(b.F32s) {
			return false
		}
		for i := range a.F32s {
			if a.F32s[i] != b.F32s[i] {
				return false
			}
		}
	}
	return true
}

// L2 returns the Euclidean distance between two F32 tensors of equal length.
func L2(a, b *Tensor) float64 {
	if a.DType != F32 || b.DType != F32 || len(a.F32s) != len(b.F32s) {
		panic("tensor: L2 requires equal-length F32 tensors")
	}
	var s float64
	for i := range a.F32s {
		d := float64(a.F32s[i] - b.F32s[i])
		s += d * d
	}
	return math.Sqrt(s)
}

// PSNR computes peak signal-to-noise ratio (dB) between two equal-shape U8
// tensors; +Inf when identical.
func PSNR(a, b *Tensor) float64 {
	if a.DType != U8 || b.DType != U8 || len(a.U8s) != len(b.U8s) || len(a.U8s) == 0 {
		panic("tensor: PSNR requires equal-length non-empty U8 tensors")
	}
	var se float64
	for i := range a.U8s {
		d := float64(int(a.U8s[i]) - int(b.U8s[i]))
		se += d * d
	}
	mse := se / float64(len(a.U8s))
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

// Marshal serializes t to a compact binary form.
func (t *Tensor) Marshal() []byte {
	n := 2 + 4*len(t.Shape)
	switch t.DType {
	case U8:
		n += len(t.U8s)
	case F32:
		n += 4 * len(t.F32s)
	}
	buf := make([]byte, n)
	buf[0] = byte(t.DType)
	buf[1] = byte(len(t.Shape))
	off := 2
	for _, s := range t.Shape {
		binary.LittleEndian.PutUint32(buf[off:], uint32(s))
		off += 4
	}
	switch t.DType {
	case U8:
		copy(buf[off:], t.U8s)
	case F32:
		for _, v := range t.F32s {
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
			off += 4
		}
	}
	return buf
}

// ErrCorrupt is returned by Unmarshal on malformed input.
var ErrCorrupt = errors.New("tensor: corrupt serialized tensor")

// Unmarshal parses a tensor produced by Marshal.
func Unmarshal(buf []byte) (*Tensor, error) {
	if len(buf) < 2 {
		return nil, ErrCorrupt
	}
	dt := DType(buf[0])
	rank := int(buf[1])
	if dt != U8 && dt != F32 {
		return nil, ErrCorrupt
	}
	if len(buf) < 2+4*rank {
		return nil, ErrCorrupt
	}
	shape := make([]int, rank)
	off := 2
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(buf[off:]))
		if shape[i] < 0 {
			return nil, ErrCorrupt
		}
		off += 4
	}
	n := Numel(shape)
	switch dt {
	case U8:
		if len(buf) != off+n {
			return nil, ErrCorrupt
		}
		return &Tensor{Shape: shape, DType: U8, U8s: append([]uint8(nil), buf[off:]...)}, nil
	default:
		if len(buf) != off+4*n {
			return nil, ErrCorrupt
		}
		data := make([]float32, n)
		for i := range data {
			data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
		}
		return &Tensor{Shape: shape, DType: F32, F32s: data}, nil
	}
}
