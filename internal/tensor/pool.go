package tensor

import (
	"math/bits"
	"sync"
)

// Scratch pooling for the inference hot path. Per-frame forward passes
// allocate identical im2col/result buffers thousands of times per second
// under serving load; recycling them through size-classed sync.Pools
// removes that steady-state GC pressure. Buffers are zeroed on Get, so a
// pooled buffer behaves exactly like a fresh make([]float32, n).

// maxPoolClass caps pooling at 2^24 floats (64 MiB) per buffer; larger
// requests fall back to plain allocation.
const maxPoolClass = 24

var scratchPools [maxPoolClass + 1]sync.Pool

// sizeClass returns the smallest c with 1<<c >= n.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// GetScratch returns a zeroed float32 buffer of length n, reusing a
// pooled allocation when one is available.
func GetScratch(n int) []float32 {
	if n <= 0 {
		return nil
	}
	c := sizeClass(n)
	if c > maxPoolClass {
		return make([]float32, n)
	}
	if v := scratchPools[c].Get(); v != nil {
		s := v.([]float32)[:n]
		clear(s)
		return s
	}
	return make([]float32, n, 1<<c)
}

// PutScratch recycles a buffer previously obtained from GetScratch (or
// any float32 slice the caller owns outright). The caller must not use s
// after. Buffers land in the largest class their capacity fully covers,
// so a later GetScratch never reslices past capacity.
func PutScratch(s []float32) {
	c := bits.Len(uint(cap(s))) - 1 // largest c with 1<<c <= cap
	if c < 0 || c > maxPoolClass {
		return
	}
	scratchPools[c].Put(s[:cap(s)])
}

var tensorPool = sync.Pool{New: func() any { return new(Tensor) }}

// GetF32 allocates a zeroed F32 tensor whose header and backing buffer
// both come from pools. Pair with PutF32 when the tensor's lifetime is
// known (intermediate activations); tensors that escape are simply
// collected and their header never re-enters the pool.
func GetF32(shape ...int) *Tensor {
	t := tensorPool.Get().(*Tensor)
	t.Shape = append(t.Shape[:0], shape...)
	t.DType = F32
	t.U8s = nil
	t.F32s = GetScratch(Numel(shape))
	return t
}

// PutF32 recycles t's buffer and header. The caller must own t outright
// and drop every reference: the same struct is handed back by a later
// GetF32. A double put of a still-released tensor is a safe no-op (the
// nil F32s gates it). Safe on nil and non-F32 tensors.
func PutF32(t *Tensor) {
	if t == nil || t.DType != F32 || t.F32s == nil {
		return
	}
	PutScratch(t.F32s)
	t.F32s = nil
	tensorPool.Put(t)
}
