package tensor

import (
	"sync"
	"testing"
)

func TestScratchZeroedAndSized(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 64, 100, 1 << 12, (1 << 12) + 1} {
		s := GetScratch(n)
		if len(s) != n {
			t.Fatalf("GetScratch(%d) len = %d", n, len(s))
		}
		for i := range s {
			if s[i] != 0 {
				t.Fatalf("GetScratch(%d)[%d] = %g, want 0", n, i, s[i])
			}
		}
		for i := range s {
			s[i] = 1 // dirty it
		}
		PutScratch(s)
	}
	// A recycled dirty buffer must come back zeroed.
	s := GetScratch(100)
	for i := range s {
		if s[i] != 0 {
			t.Fatalf("recycled buffer not zeroed at %d", i)
		}
	}
}

func TestScratchClassNeverOverReslices(t *testing.T) {
	// A buffer put back with a non-power-of-two capacity must only serve
	// requests its capacity covers.
	odd := make([]float32, 100) // cap 100: lands in class 6 (64)
	PutScratch(odd)
	for i := 0; i < 4; i++ {
		s := GetScratch(64) // class 6: may reuse odd; needs cap >= 64
		if len(s) != 64 {
			t.Fatalf("len = %d", len(s))
		}
		PutScratch(s)
	}
}

func TestGetPutF32(t *testing.T) {
	a := GetF32(2, 3)
	if a.DType != F32 || a.Numel() != 6 || len(a.F32s) != 6 {
		t.Fatalf("GetF32 tensor %+v", a)
	}
	a.F32s[0] = 42
	PutF32(a)
	if a.F32s != nil {
		t.Fatal("PutF32 did not poison the tensor")
	}
	PutF32(a)   // double-put is a no-op
	PutF32(nil) // nil-safe
	b := GetF32(2, 3)
	if b.F32s[0] != 0 {
		t.Fatal("recycled tensor not zeroed")
	}
}

func TestScratchConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := 1 + (g*37+i*11)%5000
				s := GetScratch(n)
				for j := range s {
					if s[j] != 0 {
						t.Errorf("dirty scratch at %d", j)
						return
					}
				}
				s[0] = float32(g)
				PutScratch(s)
			}
		}(g)
	}
	wg.Wait()
}
