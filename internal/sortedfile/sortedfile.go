// Package sortedfile implements the sorted-record file DeepLens uses as the
// clustering structure of the Frame File: records sorted by a uint64 key
// (frame number or wall-clock time), supporting binary-search point and
// range lookups. It is the cheapest "index" in Figure 6's construction-cost
// comparison and what enables temporal filter pushdown in Figure 3.
//
// File layout: a sparse in-memory offset table over an append-ordered data
// region. Records must be appended in non-decreasing key order; Build sorts
// a batch first.
package sortedfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
)

var (
	// ErrOutOfOrder is returned by Append when keys regress.
	ErrOutOfOrder = errors.New("sortedfile: keys must be appended in non-decreasing order")
	// ErrNotFound is returned by Get when no record carries the key.
	ErrNotFound = errors.New("sortedfile: key not found")
	errCorrupt  = errors.New("sortedfile: corrupt record")
)

const magic = 0x534F4652 // "SOFR"

// Writer appends key-ordered records to a sorted file.
type Writer struct {
	f       *os.File
	lastKey uint64
	n       int
	started bool
}

// Create starts a new sorted file at path, truncating any existing file.
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{f: f}, nil
}

// Append writes one record; key must be >= all previously appended keys.
func (w *Writer) Append(key uint64, val []byte) error {
	if w.started && key < w.lastKey {
		return fmt.Errorf("%w: %d after %d", ErrOutOfOrder, key, w.lastKey)
	}
	w.started = true
	w.lastKey = key
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:], key)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(val)))
	if _, err := w.f.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.f.Write(val); err != nil {
		return err
	}
	w.n++
	return nil
}

// Close finalizes the header (record count) and closes the file.
func (w *Writer) Close() error {
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(w.n))
	if _, err := w.f.WriteAt(cnt[:], 4); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Record is one key/value entry.
type Record struct {
	Key uint64
	Val []byte
}

// Build creates a sorted file from an unordered batch (sorted stably by key
// first, preserving input order among equal keys).
func Build(path string, recs []Record) error {
	idx := make([]int, len(recs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return recs[idx[a]].Key < recs[idx[b]].Key })
	w, err := Create(path)
	if err != nil {
		return err
	}
	for _, i := range idx {
		if err := w.Append(recs[i].Key, recs[i].Val); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}

// File is a read handle over a sorted file. Opening scans the record
// headers once to build a sparse in-memory key/offset table.
type File struct {
	f    *os.File
	keys []uint64
	offs []int64
	lens []int
}

// Open opens a sorted file for reading.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var hdr [16]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, errCorrupt
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		f.Close()
		return nil, errCorrupt
	}
	n := int(binary.LittleEndian.Uint64(hdr[4:]))
	sf := &File{f: f, keys: make([]uint64, 0, n), offs: make([]int64, 0, n), lens: make([]int, 0, n)}
	off := int64(16)
	var rh [12]byte
	for i := 0; i < n; i++ {
		if _, err := f.ReadAt(rh[:], off); err != nil {
			f.Close()
			return nil, errCorrupt
		}
		key := binary.LittleEndian.Uint64(rh[0:])
		vl := int(binary.LittleEndian.Uint32(rh[8:]))
		sf.keys = append(sf.keys, key)
		sf.offs = append(sf.offs, off+12)
		sf.lens = append(sf.lens, vl)
		off += 12 + int64(vl)
	}
	return sf, nil
}

// Close releases the file handle.
func (sf *File) Close() error { return sf.f.Close() }

// Len returns the record count.
func (sf *File) Len() int { return len(sf.keys) }

func (sf *File) read(i int) (Record, error) {
	val := make([]byte, sf.lens[i])
	if _, err := sf.f.ReadAt(val, sf.offs[i]); err != nil {
		return Record{}, err
	}
	return Record{Key: sf.keys[i], Val: val}, nil
}

// Get returns the first record with the given key.
func (sf *File) Get(key uint64) (Record, error) {
	i := sort.Search(len(sf.keys), func(i int) bool { return sf.keys[i] >= key })
	if i == len(sf.keys) || sf.keys[i] != key {
		return Record{}, ErrNotFound
	}
	return sf.read(i)
}

// Range calls fn for records with key in [lo, hi) in key order; returning
// false stops iteration. This is the temporal filter pushdown path.
func (sf *File) Range(lo, hi uint64, fn func(Record) bool) error {
	i := sort.Search(len(sf.keys), func(i int) bool { return sf.keys[i] >= lo })
	for ; i < len(sf.keys) && sf.keys[i] < hi; i++ {
		rec, err := sf.read(i)
		if err != nil {
			return err
		}
		if !fn(rec) {
			return nil
		}
	}
	return nil
}

// Scan iterates every record in key order.
func (sf *File) Scan(fn func(Record) bool) error {
	if len(sf.keys) == 0 {
		return nil
	}
	return sf.Range(sf.keys[0], sf.keys[len(sf.keys)-1]+1, fn)
}
