package sortedfile

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestAppendOrderEnforced(t *testing.T) {
	w, err := Create(filepath.Join(t.TempDir(), "f.sf"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(10, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(10, nil); err != nil {
		t.Fatalf("equal key rejected: %v", err)
	}
	if err := w.Append(9, nil); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("regressing key: err = %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.sf")
	w, _ := Create(path)
	for i := 0; i < 1000; i++ {
		if err := w.Append(uint64(i*2), []byte(fmt.Sprintf("frame-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Len() != 1000 {
		t.Fatalf("Len = %d", f.Len())
	}
	rec, err := f.Get(500)
	if err != nil || string(rec.Val) != "frame-250" {
		t.Fatalf("Get(500) = %q, %v", rec.Val, err)
	}
	if _, err := f.Get(501); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(odd) err = %v", err)
	}
}

func TestRangePushdown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.sf")
	w, _ := Create(path)
	for i := 0; i < 500; i++ {
		w.Append(uint64(i), []byte{byte(i)})
	}
	w.Close()
	f, _ := Open(path)
	defer f.Close()
	var keys []uint64
	f.Range(100, 110, func(r Record) bool {
		keys = append(keys, r.Key)
		return true
	})
	if len(keys) != 10 || keys[0] != 100 || keys[9] != 109 {
		t.Fatalf("Range(100,110) = %v", keys)
	}
	// Early stop.
	n := 0
	f.Range(0, 500, func(Record) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestBuildSortsBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.sf")
	rng := rand.New(rand.NewSource(1))
	var recs []Record
	for i := 0; i < 300; i++ {
		recs = append(recs, Record{Key: uint64(rng.Intn(100)), Val: []byte{byte(i)}})
	}
	if err := Build(path, recs); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	last := uint64(0)
	count := 0
	f.Scan(func(r Record) bool {
		if r.Key < last {
			t.Fatalf("scan out of order: %d after %d", r.Key, last)
		}
		last = r.Key
		count++
		return true
	})
	if count != 300 {
		t.Fatalf("scan visited %d, want 300", count)
	}
}

func TestStableAmongEqualKeys(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.sf")
	recs := []Record{
		{Key: 5, Val: []byte("a")},
		{Key: 5, Val: []byte("b")},
		{Key: 5, Val: []byte("c")},
		{Key: 1, Val: []byte("z")},
	}
	Build(path, recs)
	f, _ := Open(path)
	defer f.Close()
	var got []string
	f.Scan(func(r Record) bool { got = append(got, string(r.Val)); return true })
	want := []string{"z", "a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan order %v, want %v", got, want)
		}
	}
}

func TestEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.sf")
	w, _ := Create(path)
	w.Close()
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Len() != 0 {
		t.Fatalf("Len = %d", f.Len())
	}
	if err := f.Scan(func(Record) bool { t.Fatal("callback"); return true }); err != nil {
		t.Fatal(err)
	}
}

func TestOpenCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	os.WriteFile(path, bytes.Repeat([]byte{0xFF}, 64), 0o644)
	if _, err := Open(path); err == nil {
		t.Fatal("corrupt file opened")
	}
	os.WriteFile(path, []byte{1, 2}, 0o644)
	if _, err := Open(path); err == nil {
		t.Fatal("truncated file opened")
	}
}

func TestLargeValues(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.sf")
	w, _ := Create(path)
	big := bytes.Repeat([]byte("X"), 1<<20)
	w.Append(1, big)
	w.Append(2, []byte("small"))
	w.Close()
	f, _ := Open(path)
	defer f.Close()
	r, err := f.Get(1)
	if err != nil || !bytes.Equal(r.Val, big) {
		t.Fatalf("large value mismatch: %d bytes, %v", len(r.Val), err)
	}
	r2, _ := f.Get(2)
	if string(r2.Val) != "small" {
		t.Fatalf("record after large value corrupted: %q", r2.Val)
	}
}
