// Command promcheck validates a Prometheus text exposition read from
// stdin: it fails on malformed lines, duplicate series, duplicate TYPE
// declarations, and histogram families missing their
// _bucket/_sum/_count triples. CI pipes `curl /metrics` through it to
// keep the exposition contract honest.
package main

import (
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	exp, err := obs.CheckExposition(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("promcheck: ok — %d samples across %d typed families\n",
		len(exp.Samples), len(exp.Types))
}
