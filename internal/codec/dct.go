// Package codec implements DeepLens's video codecs, replacing the paper's
// OpenH264/OGG/MPEG4 dependencies with two from-scratch formats that
// preserve the properties the experiments measure:
//
//   - DLJ, an intra-frame (JPEG-like) codec: per-channel 8x8 DCT,
//     quality-scaled quantization, zigzag + run-length coding, and a flate
//     entropy stage. Frames are independently decodable, so the Frame File
//     keeps per-frame random access ("JPEG" in Figure 3).
//   - DLV, an inter-frame (H.264-like) codec: GOP structure with DLJ
//     I-frames and motion-compensated P-frames (three-step block search on
//     a reconstructed reference, residual DCT, skip blocks). Decoding is
//     sequential within a GOP, which is what precludes temporal filter
//     pushdown in Figure 3, and the lossy quality ladder (High/Medium/Low)
//     is what Figure 2 trades against storage and downstream accuracy.
package codec

import "math"

const blockSize = 8

// baseQuant is the standard JPEG luminance quantization table, the
// starting point scaled by Quality.
var baseQuant = [64]int{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// zigzag maps scan order to block order.
var zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// cosTable[u][x] = cos((2x+1)uπ/16), precomputed for the 8-point DCT.
var cosTable [8][8]float32

func init() {
	for u := 0; u < 8; u++ {
		for x := 0; x < 8; x++ {
			cosTable[u][x] = float32(math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16))
		}
	}
}

func alpha(u int) float32 {
	if u == 0 {
		return float32(1 / math.Sqrt2)
	}
	return 1
}

// fdct8 computes the 2-D type-II DCT of an 8x8 block (row-major, values
// centered around 0).
func fdct8(in, out *[64]float32) {
	var tmp [64]float32
	// Rows.
	for y := 0; y < 8; y++ {
		for u := 0; u < 8; u++ {
			var s float32
			for x := 0; x < 8; x++ {
				s += in[y*8+x] * cosTable[u][x]
			}
			tmp[y*8+u] = s * alpha(u) / 2
		}
	}
	// Columns.
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			var s float32
			for y := 0; y < 8; y++ {
				s += tmp[y*8+u] * cosTable[v][y]
			}
			out[v*8+u] = s * alpha(v) / 2
		}
	}
}

// idct8 inverts fdct8.
func idct8(in, out *[64]float32) {
	var tmp [64]float32
	// Columns.
	for u := 0; u < 8; u++ {
		for y := 0; y < 8; y++ {
			var s float32
			for v := 0; v < 8; v++ {
				s += alpha(v) * in[v*8+u] * cosTable[v][y]
			}
			tmp[y*8+u] = s / 2
		}
	}
	// Rows.
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			var s float32
			for u := 0; u < 8; u++ {
				s += alpha(u) * tmp[y*8+u] * cosTable[u][x]
			}
			out[y*8+x] = s / 2
		}
	}
}

// Quality selects a quantization level; the paper's Figure 2 sweeps
// High / Medium / Low.
type Quality int

// Quality ladder. Numeric values follow the JPEG quality convention.
const (
	QualityLow    Quality = 10
	QualityMedium Quality = 50
	QualityHigh   Quality = 90
)

func (q Quality) String() string {
	switch q {
	case QualityLow:
		return "low"
	case QualityMedium:
		return "medium"
	case QualityHigh:
		return "high"
	default:
		return "custom"
	}
}

// quantTable returns the scaled quantization table for q (clamped to
// [1,100]).
func quantTable(q Quality) [64]int {
	qi := int(q)
	if qi < 1 {
		qi = 1
	}
	if qi > 100 {
		qi = 100
	}
	var scale int
	if qi < 50 {
		scale = 5000 / qi
	} else {
		scale = 200 - 2*qi
	}
	var out [64]int
	for i, b := range baseQuant {
		v := (b*scale + 50) / 100
		if v < 1 {
			v = 1
		}
		if v > 255 {
			v = 255
		}
		out[i] = v
	}
	return out
}
