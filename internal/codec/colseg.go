package codec

// Column-segment array codecs. The tiered column store serializes sealed
// 1024-row segments into kv pages; these encoders produce losslessly
// round-tripping, self-describing blobs for each array shape a segment
// holds: int64 values, float64 values, uint32 dictionary codes, and the
// uint64 null-bitmap words. Integers and codes pick the smallest of a
// raw, run-length, or (ints only) bit-packed layout — appended metadata
// is often constant or slowly varying per block, where RLE and narrow
// packing win 10-100x — while floats and bitmaps stay raw so every bit
// pattern (NaN payloads, -0.0) survives byte-exactly. Decode(Encode(x))
// is x for every input; nothing here is lossy.

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Array layout tags (first byte of every encoded array).
const (
	segRaw    = 0x00 // fixed-width little-endian values
	segRLE    = 0x01 // (run length, value) pairs, varint-coded
	segPacked = 0x02 // ints: min value + fixed bit width deltas
)

// maxSegElems bounds decoded allocation: segments are 1024 rows, so any
// count beyond this is corruption, not data.
const maxSegElems = 1 << 20

func segHeader(tag byte, n int) []byte {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64)
	buf = append(buf, tag)
	return binary.AppendUvarint(buf, uint64(n))
}

func segCount(b []byte) (tag byte, n int, rest []byte, err error) {
	if len(b) < 2 {
		return 0, 0, nil, fmt.Errorf("%w: short segment array", ErrCorrupt)
	}
	tag = b[0]
	c, sz := binary.Uvarint(b[1:])
	if sz <= 0 || c > maxSegElems {
		return 0, 0, nil, fmt.Errorf("%w: bad segment count", ErrCorrupt)
	}
	return tag, int(c), b[1+sz:], nil
}

// EncodeInts encodes an int64 array, choosing the smallest of the raw,
// run-length and bit-packed layouts.
func EncodeInts(v []int64) []byte {
	raw := segHeader(segRaw, len(v))
	for _, x := range v {
		raw = binary.LittleEndian.AppendUint64(raw, uint64(x))
	}
	best := raw
	if rle := encodeIntsRLE(v); len(rle) < len(best) {
		best = rle
	}
	if packed := encodeIntsPacked(v); packed != nil && len(packed) < len(best) {
		best = packed
	}
	return best
}

func encodeIntsRLE(v []int64) []byte {
	out := segHeader(segRLE, len(v))
	for i := 0; i < len(v); {
		j := i
		for j < len(v) && v[j] == v[i] {
			j++
		}
		out = binary.AppendUvarint(out, uint64(j-i))
		out = binary.AppendVarint(out, v[i])
		i = j
	}
	return out
}

// encodeIntsPacked stores min + fixed-width deltas (LSB-first bit
// packing). Returns nil when packing cannot beat raw (width 64 or empty).
func encodeIntsPacked(v []int64) []byte {
	if len(v) == 0 {
		return nil
	}
	minV := v[0]
	for _, x := range v {
		if x < minV {
			minV = x
		}
	}
	var maxDelta uint64
	for _, x := range v {
		if d := uint64(x) - uint64(minV); d > maxDelta {
			maxDelta = d
		}
	}
	// Widths past 56 bits could overflow the 64-bit packing accumulator
	// (pending bits + width > 64) and save almost nothing over raw.
	width := bits.Len64(maxDelta)
	if width > 56 {
		return nil
	}
	out := segHeader(segPacked, len(v))
	out = binary.LittleEndian.AppendUint64(out, uint64(minV))
	out = append(out, byte(width))
	out = appendPackedBits(out, v, minV, width)
	return out
}

func appendPackedBits(out []byte, v []int64, minV int64, width int) []byte {
	var acc uint64
	nbits := 0
	for _, x := range v {
		d := uint64(x) - uint64(minV)
		acc |= d << nbits
		nbits += width
		for nbits >= 8 {
			out = append(out, byte(acc))
			acc >>= 8
			nbits -= 8
		}
	}
	if nbits > 0 {
		out = append(out, byte(acc))
	}
	return out
}

// DecodeInts decodes an EncodeInts blob.
func DecodeInts(b []byte) ([]int64, error) {
	tag, n, rest, err := segCount(b)
	if err != nil {
		return nil, err
	}
	out := make([]int64, n)
	switch tag {
	case segRaw:
		if len(rest) != n*8 {
			return nil, fmt.Errorf("%w: raw int payload", ErrCorrupt)
		}
		for i := range out {
			out[i] = int64(binary.LittleEndian.Uint64(rest[i*8:]))
		}
	case segRLE:
		i := 0
		for i < n {
			run, sz := binary.Uvarint(rest)
			if sz <= 0 || run == 0 || run > uint64(n-i) {
				return nil, fmt.Errorf("%w: int run", ErrCorrupt)
			}
			rest = rest[sz:]
			val, sz := binary.Varint(rest)
			if sz <= 0 {
				return nil, fmt.Errorf("%w: int run value", ErrCorrupt)
			}
			rest = rest[sz:]
			for k := 0; k < int(run); k++ {
				out[i] = val
				i++
			}
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("%w: trailing int runs", ErrCorrupt)
		}
	case segPacked:
		if len(rest) < 9 {
			return nil, fmt.Errorf("%w: packed int header", ErrCorrupt)
		}
		minV := int64(binary.LittleEndian.Uint64(rest))
		width := int(rest[8])
		rest = rest[9:]
		if width > 56 || len(rest) != (n*width+7)/8 {
			return nil, fmt.Errorf("%w: packed int payload", ErrCorrupt)
		}
		var acc uint64
		nbits := 0
		pos := 0
		mask := uint64(1)<<width - 1
		if width == 0 {
			mask = 0
		}
		for i := range out {
			for nbits < width {
				acc |= uint64(rest[pos]) << nbits
				pos++
				nbits += 8
			}
			out[i] = int64(uint64(minV) + (acc & mask))
			acc >>= width
			nbits -= width
		}
	default:
		return nil, fmt.Errorf("%w: int layout tag %d", ErrCorrupt, tag)
	}
	return out, nil
}

// EncodeFloats encodes a float64 array as raw little-endian bit patterns
// — bit-exact for every value, including NaN payloads and signed zeros.
func EncodeFloats(v []float64) []byte {
	out := segHeader(segRaw, len(v))
	for _, x := range v {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(x))
	}
	return out
}

// DecodeFloats decodes an EncodeFloats blob.
func DecodeFloats(b []byte) ([]float64, error) {
	tag, n, rest, err := segCount(b)
	if err != nil {
		return nil, err
	}
	if tag != segRaw || len(rest) != n*8 {
		return nil, fmt.Errorf("%w: float payload", ErrCorrupt)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[i*8:]))
	}
	return out, nil
}

// EncodeCodes encodes a uint32 dictionary-code array, choosing the
// smaller of the raw and run-length layouts.
func EncodeCodes(v []uint32) []byte {
	raw := segHeader(segRaw, len(v))
	for _, x := range v {
		raw = binary.LittleEndian.AppendUint32(raw, x)
	}
	rle := segHeader(segRLE, len(v))
	for i := 0; i < len(v); {
		j := i
		for j < len(v) && v[j] == v[i] {
			j++
		}
		rle = binary.AppendUvarint(rle, uint64(j-i))
		rle = binary.AppendUvarint(rle, uint64(v[i]))
		i = j
	}
	if len(rle) < len(raw) {
		return rle
	}
	return raw
}

// DecodeCodes decodes an EncodeCodes blob.
func DecodeCodes(b []byte) ([]uint32, error) {
	tag, n, rest, err := segCount(b)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	switch tag {
	case segRaw:
		if len(rest) != n*4 {
			return nil, fmt.Errorf("%w: raw code payload", ErrCorrupt)
		}
		for i := range out {
			out[i] = binary.LittleEndian.Uint32(rest[i*4:])
		}
	case segRLE:
		i := 0
		for i < n {
			run, sz := binary.Uvarint(rest)
			if sz <= 0 || run == 0 || run > uint64(n-i) {
				return nil, fmt.Errorf("%w: code run", ErrCorrupt)
			}
			rest = rest[sz:]
			val, sz := binary.Uvarint(rest)
			if sz <= 0 || val > math.MaxUint32 {
				return nil, fmt.Errorf("%w: code run value", ErrCorrupt)
			}
			rest = rest[sz:]
			for k := 0; k < int(run); k++ {
				out[i] = uint32(val)
				i++
			}
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("%w: trailing code runs", ErrCorrupt)
		}
	default:
		return nil, fmt.Errorf("%w: code layout tag %d", ErrCorrupt, tag)
	}
	return out, nil
}

// EncodeBitmap encodes null-bitmap words raw (they are already dense).
func EncodeBitmap(v []uint64) []byte {
	out := segHeader(segRaw, len(v))
	for _, x := range v {
		out = binary.LittleEndian.AppendUint64(out, x)
	}
	return out
}

// DecodeBitmap decodes an EncodeBitmap blob.
func DecodeBitmap(b []byte) ([]uint64, error) {
	tag, n, rest, err := segCount(b)
	if err != nil {
		return nil, err
	}
	if tag != segRaw || len(rest) != n*8 {
		return nil, fmt.Errorf("%w: bitmap payload", ErrCorrupt)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(rest[i*8:])
	}
	return out, nil
}
