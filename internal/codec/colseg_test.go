package codec

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestIntSegRoundTrip(t *testing.T) {
	cases := [][]int64{
		nil,
		{},
		{0},
		{42},
		{math.MinInt64, math.MaxInt64, 0, -1, 1},
		{7, 7, 7, 7, 7, 7, 7, 7},  // RLE-friendly
		{100, 101, 102, 103, 104}, // narrow packed
		{-5, -5, -5, 12, 12, 900000, -5},
	}
	long := make([]int64, 1024)
	for i := range long {
		long[i] = int64(i / 7) // slowly varying: packed or RLE wins
	}
	cases = append(cases, long)
	rnd := rand.New(rand.NewSource(1))
	wild := make([]int64, 1024)
	for i := range wild {
		wild[i] = int64(rnd.Uint64()) // full-width: raw layout
	}
	cases = append(cases, wild)
	for ci, in := range cases {
		got, err := DecodeInts(EncodeInts(in))
		if err != nil {
			t.Fatalf("case %d: decode: %v", ci, err)
		}
		if len(in) == 0 {
			if len(got) != 0 {
				t.Fatalf("case %d: want empty, got %v", ci, got)
			}
			continue
		}
		if !reflect.DeepEqual(got, in) {
			t.Fatalf("case %d: round trip mismatch:\n in=%v\nout=%v", ci, in, got)
		}
	}
}

func TestIntSegCompresses(t *testing.T) {
	v := make([]int64, 1024)
	for i := range v {
		v[i] = 3 // constant block: one RLE run
	}
	if n := len(EncodeInts(v)); n >= 1024 {
		t.Fatalf("constant int block encoded to %d bytes, want far under raw (8192)", n)
	}
	clustered := make([]int64, 1024)
	for i := range clustered {
		clustered[i] = int64(i % 16)
	}
	if n := len(EncodeInts(clustered)); n >= 1024*2 {
		t.Fatalf("narrow int block encoded to %d bytes, want bit-packed (~512)", n)
	}
}

func TestFloatSegRoundTripBitExact(t *testing.T) {
	in := []float64{0, math.Copysign(0, -1), 1.5, -2.25, math.Inf(1), math.Inf(-1),
		math.NaN(), math.Float64frombits(0x7ff8000000000123), math.SmallestNonzeroFloat64}
	got, err := DecodeFloats(EncodeFloats(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(in) {
		t.Fatalf("length %d != %d", len(got), len(in))
	}
	for i := range in {
		if math.Float64bits(got[i]) != math.Float64bits(in[i]) {
			t.Fatalf("row %d: bits %x != %x", i, math.Float64bits(got[i]), math.Float64bits(in[i]))
		}
	}
}

func TestCodeSegRoundTrip(t *testing.T) {
	cases := [][]uint32{
		{},
		{0, 0, 0, 1, 1, 2, math.MaxUint32},
		{5},
	}
	seq := make([]uint32, 1024)
	for i := range seq {
		seq[i] = uint32(i % 3)
	}
	cases = append(cases, seq)
	for ci, in := range cases {
		got, err := DecodeCodes(EncodeCodes(in))
		if err != nil {
			t.Fatalf("case %d: decode: %v", ci, err)
		}
		if len(in) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, in) {
			t.Fatalf("case %d: round trip mismatch", ci)
		}
	}
}

func TestBitmapSegRoundTrip(t *testing.T) {
	in := []uint64{0, ^uint64(0), 0xDEADBEEF, 1 << 63}
	got, err := DecodeBitmap(EncodeBitmap(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("round trip mismatch: %v != %v", got, in)
	}
}

func TestSegDecodeCorrupt(t *testing.T) {
	blob := EncodeInts([]int64{1, 2, 3, 4})
	if _, err := DecodeInts(blob[:len(blob)-1]); err == nil {
		t.Fatal("truncated int blob decoded without error")
	}
	if _, err := DecodeInts(nil); err == nil {
		t.Fatal("nil int blob decoded without error")
	}
	bad := append([]byte(nil), blob...)
	bad[0] = 0x7F // unknown layout tag
	if _, err := DecodeInts(bad); err == nil {
		t.Fatal("unknown tag decoded without error")
	}
	if _, err := DecodeFloats([]byte{segRLE, 1, 0}); err == nil {
		t.Fatal("non-raw float tag decoded without error")
	}
	if _, err := DecodeCodes([]byte{segRLE, 2, 1, 0}); err == nil {
		t.Fatal("short code runs decoded without error")
	}
}
