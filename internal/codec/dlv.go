package codec

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

const (
	dlvMagic = 0x444C5631 // "DLV1"
	mbSize   = 16

	frameI = 1
	frameP = 2
)

// DefaultGOP is the default group-of-pictures length (one I-frame every
// DefaultGOP frames).
const DefaultGOP = 30

// skipThreshold returns the per-macroblock SAD below which a P-frame block
// is coded as a skip (copy of the reference). Lower quality tolerates more
// drift for fewer bits.
func skipThreshold(q Quality) int {
	switch {
	case q >= QualityHigh:
		return 2 * mbSize * mbSize
	case q >= QualityMedium:
		return 4 * mbSize * mbSize
	default:
		return 8 * mbSize * mbSize
	}
}

// sadGreen computes the sum of absolute differences on the green channel
// between cur's macroblock at (mx,my) and ref's at (mx+dx, my+dy), with
// edge clamping.
func sadGreen(cur, ref *Image, mx, my, dx, dy int) int {
	s := 0
	for y := 0; y < mbSize; y++ {
		for x := 0; x < mbSize; x++ {
			d := int(cur.At(mx+x, my+y, 1)) - int(ref.At(mx+x+dx, my+y+dy, 1))
			if d < 0 {
				d = -d
			}
			s += d
		}
	}
	return s
}

// motionSearch runs a three-step search (radius 4,2,1) for the best MV.
func motionSearch(cur, ref *Image, mx, my int) (bdx, bdy, bsad int) {
	bsad = sadGreen(cur, ref, mx, my, 0, 0)
	for _, step := range [...]int{4, 2, 1} {
		cdx, cdy := bdx, bdy
		for _, off := range [8][2]int{{-1, -1}, {0, -1}, {1, -1}, {-1, 0}, {1, 0}, {-1, 1}, {0, 1}, {1, 1}} {
			dx, dy := cdx+off[0]*step, cdy+off[1]*step
			if dx < -15 || dx > 15 || dy < -15 || dy > 15 {
				continue
			}
			if s := sadGreen(cur, ref, mx, my, dx, dy); s < bsad {
				bsad, bdx, bdy = s, dx, dy
			}
		}
	}
	return bdx, bdy, bsad
}

// encodeResidualBlock DCT-quantizes an 8x8 residual (already centered at 0).
func encodeResidualBlock(res *[64]float32, qt *[64]int, buf *bytes.Buffer) *[64]float32 {
	var out [64]float32
	fdct8(res, &out)
	var q [64]int32
	for i := 0; i < 64; i++ {
		v := out[i] / float32(qt[i])
		if v >= 0 {
			q[i] = int32(v + 0.5)
		} else {
			q[i] = int32(v - 0.5)
		}
	}
	encodeBlockRLE(buf, &q)
	// Return the dequantized residual so the encoder reconstructs exactly
	// what the decoder will see (no drift).
	var deq, rec [64]float32
	for i := 0; i < 64; i++ {
		deq[i] = float32(q[i]) * float32(qt[i])
	}
	idct8(&deq, &rec)
	return &rec
}

func decodeResidualBlock(r *bytes.Reader, qt *[64]int) (*[64]float32, error) {
	var q [64]int32
	if err := decodeBlockRLE(r, &q); err != nil {
		return nil, err
	}
	var deq, rec [64]float32
	for i := 0; i < 64; i++ {
		deq[i] = float32(q[i]) * float32(qt[i])
	}
	idct8(&deq, &rec)
	return &rec, nil
}

func clampU8(v float32) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// DLVWriter encodes a frame sequence to an io.Writer.
type DLVWriter struct {
	w      io.Writer
	width  int
	height int
	q      Quality
	qt     [64]int
	gop    int
	n      int
	ref    *Image // reconstructed reference frame
	bytes  int64
}

// NewDLVWriter starts a DLV stream. gop <= 0 selects DefaultGOP.
func NewDLVWriter(w io.Writer, width, height int, q Quality, gop int) (*DLVWriter, error) {
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("codec: invalid dimensions %dx%d", width, height)
	}
	if gop <= 0 {
		gop = DefaultGOP
	}
	var hdr [11]byte
	binary.BigEndian.PutUint32(hdr[0:], dlvMagic)
	binary.LittleEndian.PutUint16(hdr[4:], uint16(width))
	binary.LittleEndian.PutUint16(hdr[6:], uint16(height))
	hdr[8] = uint8(q)
	binary.LittleEndian.PutUint16(hdr[9:], uint16(gop))
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &DLVWriter{w: w, width: width, height: height, q: q, qt: quantTable(q), gop: gop, bytes: int64(len(hdr))}, nil
}

// BytesWritten reports the total encoded size so far (header included).
func (e *DLVWriter) BytesWritten() int64 { return e.bytes }

// WriteFrame appends one frame to the stream.
func (e *DLVWriter) WriteFrame(img *Image) error {
	if img.W != e.width || img.H != e.height {
		return fmt.Errorf("codec: frame %dx%d does not match stream %dx%d", img.W, img.H, e.width, e.height)
	}
	var ftype byte
	var payload []byte
	if e.n%e.gop == 0 || e.ref == nil {
		ftype = frameI
		payload = deflate(encodeBody(img, &e.qt).Bytes())
		// Reconstruct exactly as the decoder will.
		raw, err := inflate(payload)
		if err != nil {
			return err
		}
		rec, err := decodeBody(raw, e.width, e.height, &e.qt)
		if err != nil {
			return err
		}
		e.ref = rec
	} else {
		ftype = frameP
		body, rec := e.encodeP(img)
		payload = deflate(body)
		e.ref = rec
	}
	var hdr [5]byte
	hdr[0] = ftype
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := e.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := e.w.Write(payload); err != nil {
		return err
	}
	e.bytes += int64(len(hdr) + len(payload))
	e.n++
	return nil
}

// encodeP motion-compensates img against e.ref, returning the raw P-frame
// body and the reconstructed frame.
func (e *DLVWriter) encodeP(img *Image) ([]byte, *Image) {
	buf := &bytes.Buffer{}
	rec := NewImage(e.width, e.height)
	thresh := skipThreshold(e.q)
	for my := 0; my < e.height; my += mbSize {
		for mx := 0; mx < e.width; mx += mbSize {
			sad0 := sadGreen(img, e.ref, mx, my, 0, 0)
			if sad0 <= thresh {
				buf.WriteByte(0) // skip: copy reference
				copyBlock(rec, e.ref, mx, my, 0, 0)
				continue
			}
			dx, dy, _ := motionSearch(img, e.ref, mx, my)
			buf.WriteByte(1)
			buf.WriteByte(byte(int8(dx)))
			buf.WriteByte(byte(int8(dy)))
			e.codeMBResidual(img, rec, mx, my, dx, dy, buf)
		}
	}
	return buf.Bytes(), rec
}

// codeMBResidual encodes the 3-channel residual of one macroblock (four
// 8x8 sub-blocks per channel) and reconstructs into rec.
func (e *DLVWriter) codeMBResidual(img, rec *Image, mx, my, dx, dy int, buf *bytes.Buffer) {
	for c := 0; c < 3; c++ {
		for sy := 0; sy < mbSize; sy += 8 {
			for sx := 0; sx < mbSize; sx += 8 {
				var res [64]float32
				for y := 0; y < 8; y++ {
					for x := 0; x < 8; x++ {
						px, py := mx+sx+x, my+sy+y
						res[y*8+x] = float32(int(img.At(px, py, c)) - int(e.ref.At(px+dx, py+dy, c)))
					}
				}
				recRes := encodeResidualBlock(&res, &e.qt, buf)
				for y := 0; y < 8; y++ {
					for x := 0; x < 8; x++ {
						px, py := mx+sx+x, my+sy+y
						pred := float32(e.ref.At(px+dx, py+dy, c))
						rec.Set(px, py, c, clampU8(pred+recRes[y*8+x]))
					}
				}
			}
		}
	}
}

func copyBlock(dst, src *Image, mx, my, dx, dy int) {
	for c := 0; c < 3; c++ {
		for y := 0; y < mbSize; y++ {
			for x := 0; x < mbSize; x++ {
				dst.Set(mx+x, my+y, c, src.At(mx+x+dx, my+y+dy, c))
			}
		}
	}
}

// Close finalizes the stream. (The format is self-delimiting; Close exists
// for symmetry and future trailer use.)
func (e *DLVWriter) Close() error { return nil }

// DLVReader decodes a DLV stream sequentially. Decoding frame k requires
// decoding all frames since the preceding I-frame — the sequential-decode
// property the storage experiments measure.
type DLVReader struct {
	r      io.Reader
	width  int
	height int
	q      Quality
	qt     [64]int
	gop    int
	ref    *Image
	n      int
}

// NewDLVReader parses the stream header.
func NewDLVReader(r io.Reader) (*DLVReader, error) {
	var hdr [11]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, ErrCorrupt
	}
	if binary.BigEndian.Uint32(hdr[0:]) != dlvMagic {
		return nil, ErrCorrupt
	}
	d := &DLVReader{
		r:      r,
		width:  int(binary.LittleEndian.Uint16(hdr[4:])),
		height: int(binary.LittleEndian.Uint16(hdr[6:])),
		q:      Quality(hdr[8]),
		gop:    int(binary.LittleEndian.Uint16(hdr[9:])),
	}
	if d.width <= 0 || d.height <= 0 || d.gop <= 0 {
		return nil, ErrCorrupt
	}
	d.qt = quantTable(d.q)
	return d, nil
}

// Size returns the stream's frame dimensions.
func (d *DLVReader) Size() (w, h int) { return d.width, d.height }

// Next decodes and returns the next frame, or io.EOF at end of stream.
func (d *DLVReader) Next() (*Image, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, ErrCorrupt
	}
	plen := binary.LittleEndian.Uint32(hdr[1:])
	// A frame payload can never exceed a few bytes per pixel; reject
	// absurd lengths before allocating (corrupt-stream defense).
	if int(plen) > 16*d.width*d.height+1024 {
		return nil, ErrCorrupt
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(d.r, payload); err != nil {
		return nil, ErrCorrupt
	}
	raw, err := inflate(payload)
	if err != nil {
		return nil, err
	}
	switch hdr[0] {
	case frameI:
		img, err := decodeBody(raw, d.width, d.height, &d.qt)
		if err != nil {
			return nil, err
		}
		d.ref = img
	case frameP:
		if d.ref == nil {
			return nil, ErrCorrupt
		}
		img, err := d.decodeP(raw)
		if err != nil {
			return nil, err
		}
		d.ref = img
	default:
		return nil, ErrCorrupt
	}
	d.n++
	return d.ref.Clone(), nil
}

func (d *DLVReader) decodeP(raw []byte) (*Image, error) {
	r := bytes.NewReader(raw)
	img := NewImage(d.width, d.height)
	for my := 0; my < d.height; my += mbSize {
		for mx := 0; mx < d.width; mx += mbSize {
			mode, err := r.ReadByte()
			if err != nil {
				return nil, ErrCorrupt
			}
			switch mode {
			case 0:
				copyBlock(img, d.ref, mx, my, 0, 0)
			case 1:
				bdx, err1 := r.ReadByte()
				bdy, err2 := r.ReadByte()
				if err1 != nil || err2 != nil {
					return nil, ErrCorrupt
				}
				dx, dy := int(int8(bdx)), int(int8(bdy))
				for c := 0; c < 3; c++ {
					for sy := 0; sy < mbSize; sy += 8 {
						for sx := 0; sx < mbSize; sx += 8 {
							res, err := decodeResidualBlock(r, &d.qt)
							if err != nil {
								return nil, err
							}
							for y := 0; y < 8; y++ {
								for x := 0; x < 8; x++ {
									px, py := mx+sx+x, my+sy+y
									pred := float32(d.ref.At(px+dx, py+dy, c))
									img.Set(px, py, c, clampU8(pred+res[y*8+x]))
								}
							}
						}
					}
				}
			default:
				return nil, ErrCorrupt
			}
		}
	}
	return img, nil
}

// EncodeDLV encodes a clip to a byte slice (convenience for segmented
// storage).
func EncodeDLV(frames []*Image, q Quality, gop int) ([]byte, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("codec: empty clip")
	}
	var buf bytes.Buffer
	w, err := NewDLVWriter(&buf, frames[0].W, frames[0].H, q, gop)
	if err != nil {
		return nil, err
	}
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeDLV decodes an entire clip.
func DecodeDLV(data []byte) ([]*Image, error) {
	r, err := NewDLVReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	var out []*Image
	for {
		img, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, img)
	}
}
