package codec

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// dljMagic identifies a standalone DLJ image.
const dljMagic = 0x444C4A31 // "DLJ1"

// ErrCorrupt is returned when a bitstream fails to parse.
var ErrCorrupt = errors.New("codec: corrupt bitstream")

// encodeBlockRLE writes one quantized 8x8 block in zigzag order as
// (run, level) pairs: uvarint(run+1) then signed varint level, terminated
// by uvarint(0).
func encodeBlockRLE(buf *bytes.Buffer, coefs *[64]int32) {
	var tmp [binary.MaxVarintLen64]byte
	run := 0
	for i := 0; i < 64; i++ {
		v := coefs[zigzag[i]]
		if v == 0 {
			run++
			continue
		}
		n := binary.PutUvarint(tmp[:], uint64(run+1))
		buf.Write(tmp[:n])
		n = binary.PutVarint(tmp[:], int64(v))
		buf.Write(tmp[:n])
		run = 0
	}
	buf.WriteByte(0) // end of block
}

// decodeBlockRLE reads one block written by encodeBlockRLE.
func decodeBlockRLE(r *bytes.Reader, coefs *[64]int32) error {
	*coefs = [64]int32{}
	pos := 0
	for {
		run, err := binary.ReadUvarint(r)
		if err != nil {
			return ErrCorrupt
		}
		if run == 0 {
			return nil
		}
		pos += int(run) - 1
		if pos >= 64 {
			return ErrCorrupt
		}
		level, err := binary.ReadVarint(r)
		if err != nil {
			return ErrCorrupt
		}
		coefs[zigzag[pos]] = int32(level)
		pos++
	}
}

// encodeChannelBlock DCT-quantizes the 8x8 block of channel c at (bx, by).
func encodeChannelBlock(img *Image, bx, by, c int, qt *[64]int, buf *bytes.Buffer) {
	var in, out [64]float32
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			in[y*8+x] = float32(img.At(bx*8+x, by*8+y, c)) - 128
		}
	}
	fdct8(&in, &out)
	var q [64]int32
	for i := 0; i < 64; i++ {
		v := out[i] / float32(qt[i])
		if v >= 0 {
			q[i] = int32(v + 0.5)
		} else {
			q[i] = int32(v - 0.5)
		}
	}
	encodeBlockRLE(buf, &q)
}

// decodeChannelBlock inverts encodeChannelBlock into img.
func decodeChannelBlock(img *Image, bx, by, c int, qt *[64]int, r *bytes.Reader) error {
	var q [64]int32
	if err := decodeBlockRLE(r, &q); err != nil {
		return err
	}
	var in, out [64]float32
	for i := 0; i < 64; i++ {
		in[i] = float32(q[i]) * float32(qt[i])
	}
	idct8(&in, &out)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			v := out[y*8+x] + 128
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			img.Set(bx*8+x, by*8+y, c, uint8(v+0.5))
		}
	}
	return nil
}

// encodeBody writes the DLJ block payload (all channels) without header or
// entropy stage.
func encodeBody(img *Image, qt *[64]int) *bytes.Buffer {
	buf := &bytes.Buffer{}
	bw := (img.W + 7) / 8
	bh := (img.H + 7) / 8
	for c := 0; c < 3; c++ {
		for by := 0; by < bh; by++ {
			for bx := 0; bx < bw; bx++ {
				encodeChannelBlock(img, bx, by, c, qt, buf)
			}
		}
	}
	return buf
}

func decodeBody(raw []byte, w, h int, qt *[64]int) (*Image, error) {
	img := NewImage(w, h)
	r := bytes.NewReader(raw)
	bw := (w + 7) / 8
	bh := (h + 7) / 8
	for c := 0; c < 3; c++ {
		for by := 0; by < bh; by++ {
			for bx := 0; bx < bw; bx++ {
				if err := decodeChannelBlock(img, bx, by, c, qt, r); err != nil {
					return nil, err
				}
			}
		}
	}
	return img, nil
}

func deflate(raw []byte) []byte {
	var out bytes.Buffer
	fw, _ := flate.NewWriter(&out, flate.DefaultCompression)
	fw.Write(raw)
	fw.Close()
	return out.Bytes()
}

func inflate(raw []byte) ([]byte, error) {
	fr := flate.NewReader(bytes.NewReader(raw))
	defer fr.Close()
	out, err := io.ReadAll(fr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return out, nil
}

// EncodeDLJ compresses img as a standalone intra-coded image.
func EncodeDLJ(img *Image, q Quality) ([]byte, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	qt := quantTable(q)
	body := deflate(encodeBody(img, &qt).Bytes())
	out := make([]byte, 9+len(body))
	binary.BigEndian.PutUint32(out[0:], dljMagic)
	binary.LittleEndian.PutUint16(out[4:], uint16(img.W))
	binary.LittleEndian.PutUint16(out[6:], uint16(img.H))
	out[8] = uint8(q)
	copy(out[9:], body)
	return out, nil
}

// DecodeDLJ decompresses a standalone DLJ image.
func DecodeDLJ(data []byte) (*Image, error) {
	if len(data) < 9 || binary.BigEndian.Uint32(data[0:]) != dljMagic {
		return nil, ErrCorrupt
	}
	w := int(binary.LittleEndian.Uint16(data[4:]))
	h := int(binary.LittleEndian.Uint16(data[6:]))
	if w <= 0 || h <= 0 {
		return nil, ErrCorrupt
	}
	qt := quantTable(Quality(data[8]))
	raw, err := inflate(data[9:])
	if err != nil {
		return nil, err
	}
	return decodeBody(raw, w, h, &qt)
}
