package codec

import "fmt"

// Image is an interleaved 8-bit RGB raster, the unit both codecs operate
// on. Pix has length W*H*3, row-major, channel-last.
type Image struct {
	W, H int
	Pix  []uint8
}

// NewImage allocates a black image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]uint8, w*h*3)}
}

// At returns the channel c value at (x, y) with coordinates clamped to the
// image bounds (the codec's edge-extension rule).
func (im *Image) At(x, y, c int) uint8 {
	if x < 0 {
		x = 0
	}
	if x >= im.W {
		x = im.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= im.H {
		y = im.H - 1
	}
	return im.Pix[(y*im.W+x)*3+c]
}

// Set stores v at (x, y, c); out-of-bounds coordinates are ignored.
func (im *Image) Set(x, y, c int, v uint8) {
	if x < 0 || x >= im.W || y < 0 || y >= im.H {
		return
	}
	im.Pix[(y*im.W+x)*3+c] = v
}

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	return &Image{W: im.W, H: im.H, Pix: append([]uint8(nil), im.Pix...)}
}

// Validate checks the pixel buffer length matches the dimensions.
func (im *Image) Validate() error {
	if im.W <= 0 || im.H <= 0 || len(im.Pix) != im.W*im.H*3 {
		return fmt.Errorf("codec: invalid image %dx%d with %d pixel bytes", im.W, im.H, len(im.Pix))
	}
	return nil
}

// RawSize returns the uncompressed storage footprint in bytes, the "RAW"
// row of Figure 2.
func (im *Image) RawSize() int { return len(im.Pix) }

// Crop returns the subimage [x0,x1)x[y0,y1) with bounds clamped.
func (im *Image) Crop(x0, y0, x1, y1 int) *Image {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > im.W {
		x1 = im.W
	}
	if y1 > im.H {
		y1 = im.H
	}
	if x1 <= x0 || y1 <= y0 {
		return NewImage(1, 1)
	}
	out := NewImage(x1-x0, y1-y0)
	for y := y0; y < y1; y++ {
		src := (y*im.W + x0) * 3
		dst := (y - y0) * out.W * 3
		copy(out.Pix[dst:dst+out.W*3], im.Pix[src:src+out.W*3])
	}
	return out
}

// MSE returns the mean squared pixel error between two equal-size images.
func MSE(a, b *Image) float64 {
	if a.W != b.W || a.H != b.H {
		panic("codec: MSE size mismatch")
	}
	var se float64
	for i := range a.Pix {
		d := float64(int(a.Pix[i]) - int(b.Pix[i]))
		se += d * d
	}
	return se / float64(len(a.Pix))
}
