package codec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// gradientImage builds a smooth test image (codec-friendly content).
func gradientImage(w, h int) *Image {
	img := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.Set(x, y, 0, uint8((x*255)/max(1, w-1)))
			img.Set(x, y, 1, uint8((y*255)/max(1, h-1)))
			img.Set(x, y, 2, uint8(((x+y)*255)/max(1, w+h-2)))
		}
	}
	return img
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// noisyImage builds a hard-to-compress image.
func noisyImage(w, h int, seed int64) *Image {
	img := NewImage(w, h)
	rng := rand.New(rand.NewSource(seed))
	rng.Read(img.Pix)
	return img
}

func psnr(a, b *Image) float64 {
	mse := MSE(a, b)
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

func TestDCTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		var in, freq, back [64]float32
		for i := range in {
			in[i] = float32(rng.Intn(256) - 128)
		}
		fdct8(&in, &freq)
		idct8(&freq, &back)
		for i := range in {
			if math.Abs(float64(in[i]-back[i])) > 0.01 {
				t.Fatalf("trial %d: DCT round trip error %g at %d", trial, in[i]-back[i], i)
			}
		}
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	seen := [64]bool{}
	for _, z := range zigzag {
		if z < 0 || z >= 64 || seen[z] {
			t.Fatalf("zigzag not a permutation at %d", z)
		}
		seen[z] = true
	}
}

func TestBlockRLERoundTrip(t *testing.T) {
	f := func(vals [64]int16) bool {
		var coefs [64]int32
		for i, v := range vals {
			coefs[zigzag[i]] = int32(v)
		}
		var buf bytes.Buffer
		encodeBlockRLE(&buf, &coefs)
		var got [64]int32
		if err := decodeBlockRLE(bytes.NewReader(buf.Bytes()), &got); err != nil {
			return false
		}
		return got == coefs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDLJRoundTripQuality(t *testing.T) {
	img := gradientImage(64, 48)
	for _, tc := range []struct {
		q       Quality
		minPSNR float64
	}{
		{QualityHigh, 38},
		{QualityMedium, 32},
		{QualityLow, 24},
	} {
		data, err := EncodeDLJ(img, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeDLJ(data)
		if err != nil {
			t.Fatalf("quality %v: decode: %v", tc.q, err)
		}
		if got.W != img.W || got.H != img.H {
			t.Fatalf("quality %v: size %dx%d", tc.q, got.W, got.H)
		}
		if p := psnr(img, got); p < tc.minPSNR {
			t.Fatalf("quality %v: PSNR %.1f dB below %v", tc.q, p, tc.minPSNR)
		}
	}
}

func TestDLJQualityLadderMonotone(t *testing.T) {
	img := noisyImage(64, 64, 3)
	pHigh := encodedPSNR(t, img, QualityHigh)
	pMed := encodedPSNR(t, img, QualityMedium)
	pLow := encodedPSNR(t, img, QualityLow)
	if !(pHigh >= pMed && pMed >= pLow) {
		t.Fatalf("PSNR not monotone with quality: %.1f / %.1f / %.1f", pHigh, pMed, pLow)
	}
	sHigh := encodedSize(t, img, QualityHigh)
	sLow := encodedSize(t, img, QualityLow)
	if sLow >= sHigh {
		t.Fatalf("low quality (%d B) not smaller than high (%d B)", sLow, sHigh)
	}
}

func encodedPSNR(t *testing.T, img *Image, q Quality) float64 {
	t.Helper()
	data, err := EncodeDLJ(img, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDLJ(data)
	if err != nil {
		t.Fatal(err)
	}
	return psnr(img, got)
}

func encodedSize(t *testing.T, img *Image, q Quality) int {
	t.Helper()
	data, err := EncodeDLJ(img, q)
	if err != nil {
		t.Fatal(err)
	}
	return len(data)
}

func TestDLJNonMultipleOf8(t *testing.T) {
	img := gradientImage(50, 37) // deliberately ragged
	data, err := EncodeDLJ(img, QualityHigh)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDLJ(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 50 || got.H != 37 {
		t.Fatalf("size %dx%d", got.W, got.H)
	}
	if p := psnr(img, got); p < 30 {
		t.Fatalf("ragged-size PSNR %.1f", p)
	}
}

func TestDLJCorruptInput(t *testing.T) {
	if _, err := DecodeDLJ(nil); err == nil {
		t.Fatal("nil input decoded")
	}
	if _, err := DecodeDLJ([]byte("not a dlj image....")); err == nil {
		t.Fatal("junk decoded")
	}
	img := gradientImage(16, 16)
	data, _ := EncodeDLJ(img, QualityHigh)
	data = data[:len(data)/2]
	if _, err := DecodeDLJ(data); err == nil {
		t.Fatal("truncated bitstream decoded")
	}
}

// makeClip renders a synthetic surveillance-style clip: static gradient
// background plus a moving bright square.
func makeClip(w, h, n int) []*Image {
	bg := gradientImage(w, h)
	out := make([]*Image, n)
	for f := 0; f < n; f++ {
		img := bg.Clone()
		ox := (f * 3) % (w - 12)
		oy := h / 3
		for y := 0; y < 10; y++ {
			for x := 0; x < 10; x++ {
				img.Set(ox+x, oy+y, 0, 230)
				img.Set(ox+x, oy+y, 1, 40)
				img.Set(ox+x, oy+y, 2, 40)
			}
		}
		out[f] = img
	}
	return out
}

func TestDLVRoundTrip(t *testing.T) {
	clip := makeClip(64, 48, 40)
	data, err := EncodeDLV(clip, QualityHigh, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDLV(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(clip) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(clip))
	}
	for i := range clip {
		if p := psnr(clip[i], got[i]); p < 30 {
			t.Fatalf("frame %d PSNR %.1f dB", i, p)
		}
	}
}

func TestDLVCompressesStaticVideo(t *testing.T) {
	clip := makeClip(96, 64, 60)
	raw := int64(0)
	for _, f := range clip {
		raw += int64(f.RawSize())
	}
	data, err := EncodeDLV(clip, QualityMedium, 30)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(raw) / float64(len(data))
	if ratio < 20 {
		t.Fatalf("compression ratio %.1fx below 20x on static video (raw=%d enc=%d)", ratio, raw, len(data))
	}
}

func TestDLVNoDriftAcrossGOP(t *testing.T) {
	// Encoder must reconstruct from its own decoded output; PSNR of the
	// last P-frame in a long GOP must stay close to the first.
	clip := makeClip(64, 48, 30)
	data, _ := EncodeDLV(clip, QualityHigh, 30) // single I-frame then 29 P
	got, err := DecodeDLV(data)
	if err != nil {
		t.Fatal(err)
	}
	first := psnr(clip[1], got[1])
	last := psnr(clip[29], got[29])
	if last < first-6 {
		t.Fatalf("drift: frame1 PSNR %.1f, frame29 PSNR %.1f", first, last)
	}
	if last < 28 {
		t.Fatalf("late-GOP PSNR %.1f too low", last)
	}
}

func TestDLVFrameSizeMismatch(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewDLVWriter(&buf, 32, 32, QualityHigh, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame(NewImage(64, 64)); err == nil {
		t.Fatal("mismatched frame accepted")
	}
}

func TestDLVCorrupt(t *testing.T) {
	if _, err := DecodeDLV([]byte("garbage stream")); err == nil {
		t.Fatal("junk stream decoded")
	}
	clip := makeClip(32, 32, 5)
	data, _ := EncodeDLV(clip, QualityHigh, 5)
	if _, err := DecodeDLV(data[:len(data)-10]); err == nil {
		t.Fatal("truncated stream decoded without error")
	}
}

func TestDLVEmptyClip(t *testing.T) {
	if _, err := EncodeDLV(nil, QualityHigh, 10); err == nil {
		t.Fatal("empty clip encoded")
	}
}

func TestCropAndAt(t *testing.T) {
	img := gradientImage(40, 30)
	c := img.Crop(10, 5, 20, 15)
	if c.W != 10 || c.H != 10 {
		t.Fatalf("crop size %dx%d", c.W, c.H)
	}
	if c.At(0, 0, 1) != img.At(10, 5, 1) {
		t.Fatal("crop content mismatch")
	}
	// Clamped reads.
	if img.At(-5, -5, 0) != img.At(0, 0, 0) || img.At(1000, 1000, 2) != img.At(39, 29, 2) {
		t.Fatal("At clamping broken")
	}
	// Degenerate crop.
	d := img.Crop(30, 30, 10, 10)
	if d.W != 1 || d.H != 1 {
		t.Fatalf("degenerate crop %dx%d", d.W, d.H)
	}
}

func TestQuantTableMonotone(t *testing.T) {
	lo := quantTable(QualityLow)
	hi := quantTable(QualityHigh)
	for i := 0; i < 64; i++ {
		if lo[i] < hi[i] {
			t.Fatalf("quant[%d]: low=%d < high=%d", i, lo[i], hi[i])
		}
	}
	// Extremes clamp without panic.
	quantTable(Quality(0))
	quantTable(Quality(1000))
}

// TestDLVBitFlipRobustness: random single-byte corruptions of a valid
// stream must produce an error or a decoded clip, never a panic.
func TestDLVBitFlipRobustness(t *testing.T) {
	clip := makeClip(48, 32, 12)
	data, err := EncodeDLV(clip, QualityMedium, 6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), data...)
		pos := rng.Intn(len(mut))
		mut[pos] ^= byte(1 << uint(rng.Intn(8)))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d (flip at %d): panic %v", trial, pos, r)
				}
			}()
			DecodeDLV(mut) // error or success both fine
		}()
	}
}

// TestDLJBitFlipRobustness: same property for the intra codec.
func TestDLJBitFlipRobustness(t *testing.T) {
	img := gradientImage(40, 28)
	data, err := EncodeDLJ(img, QualityMedium)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), data...)
		pos := rng.Intn(len(mut))
		mut[pos] ^= byte(1 << uint(rng.Intn(8)))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d (flip at %d): panic %v", trial, pos, r)
				}
			}()
			DecodeDLJ(mut)
		}()
	}
}
