// Package hashidx implements a persistent extendible hash index over the
// kv pager, the DeepLens analog of BerkeleyDB's hash access method. It
// serves equality lookups on discrete metadata (labels, string keys,
// lineage pointers) where ordering is not needed; compared with the B+
// tree it builds faster and probes in O(1) page reads.
//
// Layout: a meta page records the global depth and the head of an
// overflow-chain-serialized directory (bucket page ids). Bucket pages hold
// inline entries and chain to overflow buckets when a split cannot
// redistribute (all keys colliding at max depth).
package hashidx

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
)

// Pager is the page-file interface the index runs on; *kv.Pager satisfies it.
type Pager interface {
	Read(id uint64) ([]byte, error)
	Write(id uint64, buf []byte) error
	Alloc() (uint64, error)
	Free(id uint64) error
	WriteOverflow(val []byte) (uint64, error)
	ReadOverflow(head uint64, total int) ([]byte, error)
	FreeOverflow(head uint64) error
}

const (
	pageSize      = 4096
	bucketHdr     = 1 + 2 + 8 // local depth, nentries, overflow-next
	maxGlobal     = 20
	maxEntryBytes = pageSize - bucketHdr
)

// ErrNotFound is returned when a key is absent.
var ErrNotFound = errors.New("hashidx: key not found")

var errCorrupt = errors.New("hashidx: corrupt page")

// Index is an extendible hash table persisted in a page file.
type Index struct {
	p      Pager
	meta   uint64
	depth  uint8
	dir    []uint64 // bucket page per directory slot; len == 1<<depth
	nitems int
}

// Create allocates a new index in p and returns it; Meta() identifies it
// for reopening.
func Create(p Pager) (*Index, error) {
	meta, err := p.Alloc()
	if err != nil {
		return nil, err
	}
	b0, err := p.Alloc()
	if err != nil {
		return nil, err
	}
	if err := writeBucket(p, b0, &bucket{}); err != nil {
		return nil, err
	}
	ix := &Index{p: p, meta: meta, depth: 0, dir: []uint64{b0}}
	if err := ix.saveMeta(); err != nil {
		return nil, err
	}
	return ix, nil
}

// Open loads an index previously created in p with the given meta page.
func Open(p Pager, meta uint64) (*Index, error) {
	buf, err := p.Read(meta)
	if err != nil {
		return nil, err
	}
	ix := &Index{p: p, meta: meta}
	ix.depth = buf[0]
	if ix.depth > maxGlobal {
		return nil, errCorrupt
	}
	ix.nitems = int(binary.LittleEndian.Uint64(buf[1:]))
	head := binary.LittleEndian.Uint64(buf[9:])
	total := int(binary.LittleEndian.Uint32(buf[17:]))
	raw, err := p.ReadOverflow(head, total)
	if err != nil {
		return nil, err
	}
	n := 1 << ix.depth
	if len(raw) != 8*n {
		return nil, errCorrupt
	}
	ix.dir = make([]uint64, n)
	for i := range ix.dir {
		ix.dir[i] = binary.LittleEndian.Uint64(raw[8*i:])
	}
	return ix, nil
}

// Meta returns the meta page id used to reopen the index.
func (ix *Index) Meta() uint64 { return ix.meta }

// Flush persists the directory and entry count to the meta page. Inserts
// that split a bucket persist the directory eagerly; plain inserts only
// touch bucket pages, so callers must Flush before closing the pager to
// make Len() durable.
func (ix *Index) Flush() error { return ix.saveMeta() }

// Len returns the number of stored entries.
func (ix *Index) Len() int { return ix.nitems }

func (ix *Index) saveMeta() error {
	old, err := ix.p.Read(ix.meta)
	if err == nil {
		if h := binary.LittleEndian.Uint64(old[9:]); h != 0 {
			if err := ix.p.FreeOverflow(h); err != nil {
				return err
			}
		}
	}
	raw := make([]byte, 8*len(ix.dir))
	for i, d := range ix.dir {
		binary.LittleEndian.PutUint64(raw[8*i:], d)
	}
	head, err := ix.p.WriteOverflow(raw)
	if err != nil {
		return err
	}
	buf := make([]byte, pageSize)
	buf[0] = ix.depth
	binary.LittleEndian.PutUint64(buf[1:], uint64(ix.nitems))
	binary.LittleEndian.PutUint64(buf[9:], head)
	binary.LittleEndian.PutUint32(buf[17:], uint32(len(raw)))
	return ix.p.Write(ix.meta, buf)
}

type bucket struct {
	local uint8
	next  uint64 // overflow bucket page
	keys  [][]byte
	vals  [][]byte
}

func (b *bucket) size() int {
	s := bucketHdr
	for i := range b.keys {
		s += 6 + len(b.keys[i]) + len(b.vals[i])
	}
	return s
}

func readBucket(p Pager, id uint64) (*bucket, error) {
	buf, err := p.Read(id)
	if err != nil {
		return nil, err
	}
	b := &bucket{local: buf[0]}
	n := int(binary.LittleEndian.Uint16(buf[1:]))
	b.next = binary.LittleEndian.Uint64(buf[3:])
	off := bucketHdr
	b.keys = make([][]byte, n)
	b.vals = make([][]byte, n)
	for i := 0; i < n; i++ {
		if off+6 > pageSize {
			return nil, errCorrupt
		}
		kl := int(binary.LittleEndian.Uint16(buf[off:]))
		vl := int(binary.LittleEndian.Uint32(buf[off+2:]))
		off += 6
		if off+kl+vl > pageSize {
			return nil, errCorrupt
		}
		b.keys[i] = append([]byte(nil), buf[off:off+kl]...)
		off += kl
		b.vals[i] = append([]byte(nil), buf[off:off+vl]...)
		off += vl
	}
	return b, nil
}

func writeBucket(p Pager, id uint64, b *bucket) error {
	buf := make([]byte, pageSize)
	buf[0] = b.local
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(b.keys)))
	binary.LittleEndian.PutUint64(buf[3:], b.next)
	off := bucketHdr
	for i := range b.keys {
		binary.LittleEndian.PutUint16(buf[off:], uint16(len(b.keys[i])))
		binary.LittleEndian.PutUint32(buf[off+2:], uint32(len(b.vals[i])))
		off += 6
		copy(buf[off:], b.keys[i])
		off += len(b.keys[i])
		copy(buf[off:], b.vals[i])
		off += len(b.vals[i])
	}
	return p.Write(id, buf)
}

func hash64(key []byte) uint64 {
	h := fnv.New64a()
	h.Write(key)
	return h.Sum64()
}

func (ix *Index) slot(h uint64) int { return int(h & ((1 << ix.depth) - 1)) }

// Get returns the value stored under key, following overflow chains.
func (ix *Index) Get(key []byte) ([]byte, error) {
	id := ix.dir[ix.slot(hash64(key))]
	for id != 0 {
		b, err := readBucket(ix.p, id)
		if err != nil {
			return nil, err
		}
		for i, k := range b.keys {
			if bytes.Equal(k, key) {
				return append([]byte(nil), b.vals[i]...), nil
			}
		}
		id = b.next
	}
	return nil, ErrNotFound
}

// Put inserts or replaces the value under key. Entries must fit a page.
func (ix *Index) Put(key, val []byte) error {
	if 6+len(key)+len(val) > maxEntryBytes {
		return fmt.Errorf("hashidx: entry of %d bytes exceeds page capacity", 6+len(key)+len(val))
	}
	for {
		h := hash64(key)
		slot := ix.slot(h)
		id := ix.dir[slot]
		// Replace in place anywhere on the chain.
		cid := id
		for cid != 0 {
			b, err := readBucket(ix.p, cid)
			if err != nil {
				return err
			}
			for i, k := range b.keys {
				if bytes.Equal(k, key) {
					b.vals[i] = append([]byte(nil), val...)
					if b.size() <= pageSize {
						return writeBucket(ix.p, cid, b)
					}
					// Replacement grew past capacity: delete and reinsert.
					b.keys = append(b.keys[:i], b.keys[i+1:]...)
					b.vals = append(b.vals[:i], b.vals[i+1:]...)
					if err := writeBucket(ix.p, cid, b); err != nil {
						return err
					}
					ix.nitems--
					return ix.Put(key, val)
				}
			}
			cid = b.next
		}
		// Insert into the head bucket if it fits.
		b, err := readBucket(ix.p, id)
		if err != nil {
			return err
		}
		if b.size()+6+len(key)+len(val) <= pageSize {
			b.keys = append(b.keys, append([]byte(nil), key...))
			b.vals = append(b.vals, append([]byte(nil), val...))
			if err := writeBucket(ix.p, id, b); err != nil {
				return err
			}
			ix.nitems++
			return nil
		}
		// Full: split (or chain at max depth).
		if b.local >= maxGlobal {
			return ix.chainInsert(id, b, key, val)
		}
		if err := ix.split(slot, id, b); err != nil {
			return err
		}
	}
}

// chainInsert appends to the bucket's overflow chain when splitting is
// exhausted.
func (ix *Index) chainInsert(headID uint64, head *bucket, key, val []byte) error {
	id, b := headID, head
	for {
		if b.size()+6+len(key)+len(val) <= pageSize {
			b.keys = append(b.keys, append([]byte(nil), key...))
			b.vals = append(b.vals, append([]byte(nil), val...))
			if err := writeBucket(ix.p, id, b); err != nil {
				return err
			}
			ix.nitems++
			return nil
		}
		if b.next == 0 {
			nid, err := ix.p.Alloc()
			if err != nil {
				return err
			}
			nb := &bucket{local: b.local}
			nb.keys = append(nb.keys, append([]byte(nil), key...))
			nb.vals = append(nb.vals, append([]byte(nil), val...))
			if err := writeBucket(ix.p, nid, nb); err != nil {
				return err
			}
			b.next = nid
			if err := writeBucket(ix.p, id, b); err != nil {
				return err
			}
			ix.nitems++
			return nil
		}
		nid := b.next
		nb, err := readBucket(ix.p, nid)
		if err != nil {
			return err
		}
		id, b = nid, nb
	}
}

// split divides the bucket serving slot into two buckets on the next hash
// bit, doubling the directory when the bucket is already at global depth.
func (ix *Index) split(slot int, id uint64, b *bucket) error {
	if b.local == ix.depth {
		// Put guards b.local < maxGlobal, so doubling is always legal here.
		nd := make([]uint64, len(ix.dir)*2)
		copy(nd, ix.dir)
		copy(nd[len(ix.dir):], ix.dir)
		ix.dir = nd
		ix.depth++
	}
	newID, err := ix.p.Alloc()
	if err != nil {
		return err
	}
	bit := uint64(1) << b.local
	b.local++
	nb := &bucket{local: b.local}
	var keepK, keepV [][]byte
	for i := range b.keys {
		if hash64(b.keys[i])&bit != 0 {
			nb.keys = append(nb.keys, b.keys[i])
			nb.vals = append(nb.vals, b.vals[i])
		} else {
			keepK = append(keepK, b.keys[i])
			keepV = append(keepV, b.vals[i])
		}
	}
	b.keys, b.vals = keepK, keepV
	if err := writeBucket(ix.p, id, b); err != nil {
		return err
	}
	if err := writeBucket(ix.p, newID, nb); err != nil {
		return err
	}
	// Repoint directory slots whose low (local-1) bits match this bucket and
	// whose new bit is set. The dir[s]==id guard confines the repoint to
	// slots that actually referenced the split bucket.
	mask := bit - 1
	base := uint64(slot) & mask
	for s := range ix.dir {
		if uint64(s)&mask == base && uint64(s)&bit != 0 && ix.dir[s] == id {
			ix.dir[s] = newID
		}
	}
	return ix.saveMeta()
}

// Delete removes key, or returns ErrNotFound.
func (ix *Index) Delete(key []byte) error {
	id := ix.dir[ix.slot(hash64(key))]
	for id != 0 {
		b, err := readBucket(ix.p, id)
		if err != nil {
			return err
		}
		for i, k := range b.keys {
			if bytes.Equal(k, key) {
				b.keys = append(b.keys[:i], b.keys[i+1:]...)
				b.vals = append(b.vals[:i], b.vals[i+1:]...)
				if err := writeBucket(ix.p, id, b); err != nil {
					return err
				}
				ix.nitems--
				return nil
			}
		}
		id = b.next
	}
	return ErrNotFound
}

// Scan calls fn for every entry in unspecified order; fn returning false
// stops the scan.
func (ix *Index) Scan(fn func(k, v []byte) bool) error {
	seen := make(map[uint64]bool)
	for _, id := range ix.dir {
		if seen[id] {
			continue
		}
		seen[id] = true
		cur := id
		for cur != 0 {
			b, err := readBucket(ix.p, cur)
			if err != nil {
				return err
			}
			for i := range b.keys {
				if !fn(b.keys[i], b.vals[i]) {
					return nil
				}
			}
			cur = b.next
		}
	}
	return nil
}
