package hashidx

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/kv"
)

func newIndex(t testing.TB) (*Index, *kv.Pager) {
	t.Helper()
	p, err := kv.OpenPager(filepath.Join(t.TempDir(), "h.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	ix, err := Create(p)
	if err != nil {
		t.Fatal(err)
	}
	return ix, p
}

func TestEmpty(t *testing.T) {
	ix, _ := newIndex(t)
	if _, err := ix.Get([]byte("x")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on empty index: %v", err)
	}
	if err := ix.Delete([]byte("x")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete on empty index: %v", err)
	}
	if ix.Len() != 0 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestPutGetMany(t *testing.T) {
	ix, _ := newIndex(t)
	const n = 20000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		v := []byte(fmt.Sprintf("val-%d", i))
		if err := ix.Put(k, v); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	if ix.Len() != n {
		t.Fatalf("Len = %d, want %d", ix.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, err := ix.Get([]byte(fmt.Sprintf("key-%d", i)))
		if err != nil || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Get(key-%d) = %q, %v", i, v, err)
		}
	}
}

func TestReplace(t *testing.T) {
	ix, _ := newIndex(t)
	for i := 0; i < 100; i++ {
		if err := ix.Put([]byte("same"), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d after 100 replaces, want 1", ix.Len())
	}
	v, _ := ix.Get([]byte("same"))
	if string(v) != "v99" {
		t.Fatalf("final value %q, want v99", v)
	}
}

func TestReplaceGrowingValue(t *testing.T) {
	ix, _ := newIndex(t)
	// Fill the key's bucket so a grown replacement forces the reinsert path.
	for i := 0; i < 2000; i++ {
		ix.Put([]byte(fmt.Sprintf("filler-%d", i)), bytes.Repeat([]byte("x"), 100))
	}
	key := []byte("grow")
	if err := ix.Put(key, []byte("small")); err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("B"), 3000)
	if err := ix.Put(key, big); err != nil {
		t.Fatal(err)
	}
	got, err := ix.Get(key)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("grown value mismatch: len=%d err=%v", len(got), err)
	}
}

func TestDelete(t *testing.T) {
	ix, _ := newIndex(t)
	for i := 0; i < 1000; i++ {
		ix.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	for i := 0; i < 1000; i += 3 {
		if err := ix.Delete([]byte(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("Delete(k%d): %v", i, err)
		}
	}
	for i := 0; i < 1000; i++ {
		_, err := ix.Get([]byte(fmt.Sprintf("k%d", i)))
		if i%3 == 0 && !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted k%d still present", i)
		}
		if i%3 != 0 && err != nil {
			t.Fatalf("kept k%d lost: %v", i, err)
		}
	}
}

func TestPersistAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "h.db")
	p, err := kv.OpenPager(path)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Create(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		ix.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	meta := ix.Meta()
	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := kv.OpenPager(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	ix2, err := Open(p2, meta)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Len() != 5000 {
		t.Fatalf("Len after reopen = %d", ix2.Len())
	}
	for i := 0; i < 5000; i += 61 {
		v, err := ix2.Get([]byte(fmt.Sprintf("k%d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("reopen Get(k%d) = %q, %v", i, v, err)
		}
	}
}

func TestScanVisitsAll(t *testing.T) {
	ix, _ := newIndex(t)
	want := map[string]string{}
	for i := 0; i < 3000; i++ {
		k, v := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		want[k] = v
		ix.Put([]byte(k), []byte(v))
	}
	got := map[string]string{}
	if err := ix.Scan(func(k, v []byte) bool {
		got[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("scan value for %s = %q, want %q", k, got[k], v)
		}
	}
}

func TestEntryTooLarge(t *testing.T) {
	ix, _ := newIndex(t)
	if err := ix.Put([]byte("k"), make([]byte, 5000)); err == nil {
		t.Fatal("oversized entry accepted")
	}
}

func TestQuickModelCheck(t *testing.T) {
	ix, _ := newIndex(t)
	model := map[string]string{}
	rng := rand.New(rand.NewSource(9))
	for op := 0; op < 30000; op++ {
		k := fmt.Sprintf("k%d", rng.Intn(1200))
		switch rng.Intn(4) {
		case 0, 1, 2:
			v := fmt.Sprintf("v%d", rng.Int63())
			model[k] = v
			if err := ix.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
		default:
			_, had := model[k]
			err := ix.Delete([]byte(k))
			if had != (err == nil) {
				t.Fatalf("Delete(%s) = %v, model had=%v", k, err, had)
			}
			delete(model, k)
		}
	}
	if ix.Len() != len(model) {
		t.Fatalf("Len = %d, model = %d", ix.Len(), len(model))
	}
	for k, v := range model {
		got, err := ix.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("Get(%s) = %q, %v; want %q", k, got, err, v)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	ix, _ := newIndex(t)
	f := func(k, v []byte) bool {
		if len(k) == 0 || 6+len(k)+len(v) > maxEntryBytes {
			return true
		}
		if err := ix.Put(k, v); err != nil {
			return false
		}
		got, err := ix.Get(k)
		return err == nil && bytes.Equal(got, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
