package video

import (
	"fmt"
	"math"

	"repro/internal/codec"
	"repro/internal/kv"
)

// This file implements the paper's §3 "Future Work: Storage Advisor": a
// component that analyzes a workload description (or SLO) and returns an
// optimized storage scheme, playing the role classical physical-design
// advisors play for relational data.

// Workload describes how a stored video will be accessed.
type Workload struct {
	// Frames is the video length.
	Frames int
	// FrameBytes is the raw size of one frame (W*H*3).
	FrameBytes int
	// ScansPerDay is how often the video is read.
	ScansPerDay float64
	// TemporalSelectivity is the average fraction of the video a scan
	// touches (1.0 = always full scans, 0.01 = narrow windows).
	TemporalSelectivity float64
	// MinAccuracy is the lowest acceptable downstream accuracy relative
	// to RAW (1.0 = lossless required; 0.9 tolerates visible loss).
	MinAccuracy float64
	// StorageBudgetBytes caps the stored size; 0 = unbounded.
	StorageBudgetBytes int64
}

// Advice is the advisor's recommendation.
type Advice struct {
	Format  Format
	Quality codec.Quality
	// ClipLen applies to FormatSegmented.
	ClipLen uint64
	// EstBytes and EstScanCost are the model's estimates for the choice.
	EstBytes    int64
	EstScanCost float64 // relative decode cost per scan (frames decoded)
	// Rationale explains the decision for the operator.
	Rationale string
}

// CostProfile holds the advisor's calibrated constants; defaults come from
// the Figure 2/3 measurements on the reference container.
type CostProfile struct {
	// CompressionRatio maps quality to the measured DLV ratio.
	CompressionRatio map[codec.Quality]float64
	// IntraRatio is the measured DLJ (frame file) compression ratio.
	IntraRatio float64
	// AccuracyAt maps quality to measured relative downstream accuracy.
	AccuracyAt map[codec.Quality]float64
	// DecodeCostRatio is the per-frame decode cost of inter-coded video
	// relative to reading a raw frame.
	DecodeCostRatio float64
	// RentPerGiBDay prices storage in the same frame-decode units the scan
	// cost uses, per GiB per day; it is what makes compression worthwhile
	// when no hard budget is set.
	RentPerGiBDay float64
}

// DefaultCostProfile reflects the Figure 2 measurements.
func DefaultCostProfile() CostProfile {
	return CostProfile{
		CompressionRatio: map[codec.Quality]float64{
			codec.QualityHigh:   44,
			codec.QualityMedium: 96,
			codec.QualityLow:    255,
		},
		IntraRatio: 8,
		AccuracyAt: map[codec.Quality]float64{
			codec.QualityHigh:   0.994,
			codec.QualityMedium: 0.978,
			codec.QualityLow:    0.935,
		},
		DecodeCostRatio: 1.3,
		RentPerGiBDay:   200,
	}
}

// Advise picks a storage scheme for the workload: the highest-compression
// quality meeting the accuracy floor, then the format minimizing expected
// scan cost subject to the storage budget. Clip length for the segmented
// format is sized to the workload's typical window.
func Advise(w Workload, p CostProfile) (Advice, error) {
	if w.Frames <= 0 || w.FrameBytes <= 0 {
		return Advice{}, fmt.Errorf("video: workload needs positive Frames and FrameBytes")
	}
	if w.TemporalSelectivity <= 0 || w.TemporalSelectivity > 1 {
		return Advice{}, fmt.Errorf("video: TemporalSelectivity must be in (0,1]")
	}
	raw := int64(w.Frames) * int64(w.FrameBytes)

	// Quality: cheapest storage whose accuracy clears the floor. A floor
	// above the best lossy accuracy forces RAW.
	quality := codec.Quality(0)
	lossyOK := false
	for _, q := range []codec.Quality{codec.QualityLow, codec.QualityMedium, codec.QualityHigh} {
		if p.AccuracyAt[q] >= w.MinAccuracy {
			quality = q
			lossyOK = true
			break
		}
	}

	type option struct {
		format  Format
		quality codec.Quality
		clipLen uint64
		bytes   int64
		scan    float64
	}
	var opts []option

	// RAW frame file: full pushdown, no decode, maximal storage.
	opts = append(opts, option{
		format: FormatRaw,
		bytes:  raw,
		scan:   float64(w.Frames) * w.TemporalSelectivity,
	})
	if lossyOK {
		// DLJ frame file: full pushdown, intra-only compression.
		opts = append(opts, option{
			format: FormatDLJ, quality: quality,
			bytes: int64(float64(raw) / p.IntraRatio),
			scan:  float64(w.Frames) * w.TemporalSelectivity * p.DecodeCostRatio,
		})
		// Encoded file: best compression, whole-prefix decode per scan
		// (expected prefix length for a uniformly placed window ~ 1/2 + s/2).
		opts = append(opts, option{
			format: FormatDLV, quality: quality,
			bytes: int64(float64(raw) / p.CompressionRatio[quality]),
			scan:  float64(w.Frames) * (0.5 + w.TemporalSelectivity/2) * p.DecodeCostRatio,
		})
		// Segmented file: clip length ~ half the typical window, clamped.
		window := float64(w.Frames) * w.TemporalSelectivity
		clip := uint64(math.Max(8, math.Min(128, window/2)))
		// Shorter clips mean more I-frames: discount the compression ratio
		// toward the intra ratio as clips shrink.
		gop := float64(codec.DefaultGOP)
		frac := math.Min(1, float64(clip)/gop)
		ratio := p.IntraRatio + (p.CompressionRatio[quality]-p.IntraRatio)*frac
		opts = append(opts, option{
			format: FormatSegmented, quality: quality, clipLen: clip,
			bytes: int64(float64(raw) / ratio),
			scan:  (window + float64(clip)) * p.DecodeCostRatio,
		})
	}

	best := option{bytes: -1}
	bestCost := math.Inf(1)
	for _, o := range opts {
		if w.StorageBudgetBytes > 0 && o.bytes > w.StorageBudgetBytes {
			continue
		}
		// Objective: daily scan cost plus storage rent.
		cost := o.scan*w.ScansPerDay + float64(o.bytes)/(1<<30)*p.RentPerGiBDay
		if cost < bestCost {
			best, bestCost = o, cost
		}
	}
	if best.bytes < 0 {
		return Advice{}, fmt.Errorf("video: no format fits budget %d B at accuracy >= %.2f (RAW needs %d B)",
			w.StorageBudgetBytes, w.MinAccuracy, raw)
	}
	adv := Advice{
		Format: best.format, Quality: best.quality, ClipLen: best.clipLen,
		EstBytes: best.bytes, EstScanCost: best.scan,
	}
	adv.Rationale = fmt.Sprintf(
		"%s at quality %v: est %.1f MiB (raw %.1f MiB), est %.0f frame-decodes/scan at selectivity %.2f",
		best.format, best.quality, float64(best.bytes)/(1<<20), float64(raw)/(1<<20),
		best.scan, w.TemporalSelectivity)
	return adv, nil
}

// Build constructs the advised store. bucket serves the frame-file and
// segmented formats; filePath serves the encoded stream.
func (a Advice) Build(bucket *kv.Bucket, filePath string) (Store, error) {
	switch a.Format {
	case FormatRaw:
		return NewFrameFile(bucket, false, codec.QualityHigh), nil
	case FormatDLJ:
		return NewFrameFile(bucket, true, a.Quality), nil
	case FormatDLV:
		return NewEncodedFile(filePath, a.Quality, codec.DefaultGOP)
	case FormatSegmented:
		return NewSegmentedFile(bucket, a.Quality, codec.DefaultGOP, a.ClipLen), nil
	default:
		return nil, fmt.Errorf("video: unknown advised format %v", a.Format)
	}
}
