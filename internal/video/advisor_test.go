package video

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/codec"
	"repro/internal/kv"
)

func baseWorkload() Workload {
	return Workload{
		Frames:              35280,
		FrameBytes:          1920 * 1080 * 3,
		ScansPerDay:         10,
		TemporalSelectivity: 0.05,
		MinAccuracy:         0.97,
	}
}

func TestAdviseLosslessRequirementForcesRaw(t *testing.T) {
	w := baseWorkload()
	w.MinAccuracy = 1.0
	adv, err := Advise(w, DefaultCostProfile())
	if err != nil {
		t.Fatal(err)
	}
	if adv.Format != FormatRaw {
		t.Fatalf("lossless requirement got %v", adv.Format)
	}
}

func TestAdviseNarrowScansPreferSeekableFormat(t *testing.T) {
	w := baseWorkload()
	w.TemporalSelectivity = 0.01 // very narrow windows
	w.ScansPerDay = 100
	adv, err := Advise(w, DefaultCostProfile())
	if err != nil {
		t.Fatal(err)
	}
	if adv.Format == FormatDLV {
		t.Fatalf("narrow frequent scans got the sequential format: %+v", adv)
	}
}

func TestAdviseTightBudgetForcesInterCoding(t *testing.T) {
	w := baseWorkload()
	raw := int64(w.Frames) * int64(w.FrameBytes)
	w.StorageBudgetBytes = raw / 20 // beyond DLJ's reach
	adv, err := Advise(w, DefaultCostProfile())
	if err != nil {
		t.Fatal(err)
	}
	if adv.Format != FormatDLV && adv.Format != FormatSegmented {
		t.Fatalf("tight budget got %v", adv.Format)
	}
	if adv.EstBytes > w.StorageBudgetBytes {
		t.Fatalf("advice exceeds budget: %d > %d", adv.EstBytes, w.StorageBudgetBytes)
	}
}

func TestAdviseImpossibleBudget(t *testing.T) {
	w := baseWorkload()
	w.MinAccuracy = 1.0        // forces RAW...
	w.StorageBudgetBytes = 1e6 // ...which cannot fit
	if _, err := Advise(w, DefaultCostProfile()); err == nil {
		t.Fatal("impossible constraint satisfied")
	}
}

func TestAdviseAccuracyFloorSelectsQuality(t *testing.T) {
	p := DefaultCostProfile()
	w := baseWorkload()
	w.MinAccuracy = 0.99 // only high quality clears it
	adv, err := Advise(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Format != FormatRaw && adv.Quality != codec.QualityHigh {
		t.Fatalf("accuracy floor 0.99 got quality %v", adv.Quality)
	}
	w.MinAccuracy = 0.9 // everything clears it: lowest quality wins
	adv, err = Advise(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Format != FormatRaw && adv.Quality != codec.QualityLow {
		t.Fatalf("accuracy floor 0.9 got quality %v", adv.Quality)
	}
}

func TestAdviseRationaleAndValidation(t *testing.T) {
	adv, err := Advise(baseWorkload(), DefaultCostProfile())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(adv.Rationale, "MiB") {
		t.Fatalf("rationale %q", adv.Rationale)
	}
	if _, err := Advise(Workload{}, DefaultCostProfile()); err == nil {
		t.Fatal("empty workload accepted")
	}
	w := baseWorkload()
	w.TemporalSelectivity = 2
	if _, err := Advise(w, DefaultCostProfile()); err == nil {
		t.Fatal("selectivity > 1 accepted")
	}
}

func TestAdviceBuildRoundTrip(t *testing.T) {
	st, err := kv.Open(filepath.Join(t.TempDir(), "a.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	dir := t.TempDir()
	for _, format := range []Format{FormatRaw, FormatDLJ, FormatDLV, FormatSegmented} {
		adv := Advice{Format: format, Quality: codec.QualityHigh, ClipLen: 16}
		b, _ := st.Bucket("adv-" + format.String())
		store, err := adv.Build(b, filepath.Join(dir, format.String()+".dlv"))
		if err != nil {
			t.Fatalf("%v: %v", format, err)
		}
		if store.Format() != format {
			t.Fatalf("built %v, want %v", store.Format(), format)
		}
		if err := Ingest(store, 10, func(i uint64) *codec.Image { return genFrame(i, 32, 32) }); err != nil {
			t.Fatalf("%v ingest: %v", format, err)
		}
		n := 0
		store.Scan(0, 10, func(Frame) bool { n++; return true })
		if n != 10 {
			t.Fatalf("%v scan %d frames", format, n)
		}
	}
}
