package video

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/codec"
	"repro/internal/kv"
)

// genFrame renders a deterministic frame: gradient plus a moving block.
func genFrame(i uint64, w, h int) *codec.Image {
	img := codec.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.Set(x, y, 0, uint8(x*3))
			img.Set(x, y, 1, uint8(y*3))
			img.Set(x, y, 2, 100)
		}
	}
	ox := int(i*2) % (w - 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			img.Set(ox+x, h/2+y, 0, 250)
			img.Set(ox+x, h/2+y, 1, 40)
			img.Set(ox+x, h/2+y, 2, 40)
		}
	}
	return img
}

func newStoreKV(t *testing.T) *kv.Store {
	t.Helper()
	s, err := kv.Open(filepath.Join(t.TempDir(), "v.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// buildAll constructs every format over the same n synthetic frames.
func buildAll(t *testing.T, n uint64) map[Format]Store {
	t.Helper()
	s := newStoreKV(t)
	dir := t.TempDir()
	stores := map[Format]Store{}

	bRaw, _ := s.Bucket("raw")
	stores[FormatRaw] = NewFrameFile(bRaw, false, codec.QualityHigh)
	bDLJ, _ := s.Bucket("dlj")
	stores[FormatDLJ] = NewFrameFile(bDLJ, true, codec.QualityHigh)
	ef, err := NewEncodedFile(filepath.Join(dir, "v.dlv"), codec.QualityHigh, 16)
	if err != nil {
		t.Fatal(err)
	}
	stores[FormatDLV] = ef
	bSeg, _ := s.Bucket("seg")
	stores[FormatSegmented] = NewSegmentedFile(bSeg, codec.QualityHigh, 16, 16)

	for _, st := range stores {
		if err := Ingest(st, n, func(i uint64) *codec.Image { return genFrame(i, 64, 48) }); err != nil {
			t.Fatalf("%v ingest: %v", st.Format(), err)
		}
	}
	return stores
}

func TestAllFormatsFullScan(t *testing.T) {
	const n = 50
	stores := buildAll(t, n)
	for f, st := range stores {
		if st.NumFrames() != n {
			t.Fatalf("%v NumFrames = %d", f, st.NumFrames())
		}
		var nums []uint64
		err := st.Scan(0, n, func(fr Frame) bool {
			nums = append(nums, fr.Number)
			if fr.Image.W != 64 || fr.Image.H != 48 {
				t.Fatalf("%v frame %d size %dx%d", f, fr.Number, fr.Image.W, fr.Image.H)
			}
			return true
		})
		if err != nil {
			t.Fatalf("%v scan: %v", f, err)
		}
		if len(nums) != n {
			t.Fatalf("%v scan visited %d frames", f, len(nums))
		}
		for i, num := range nums {
			if num != uint64(i) {
				t.Fatalf("%v scan order broken at %d: %d", f, i, num)
			}
		}
	}
}

func TestAllFormatsRangeScan(t *testing.T) {
	const n = 60
	stores := buildAll(t, n)
	for f, st := range stores {
		var nums []uint64
		if err := st.Scan(25, 35, func(fr Frame) bool {
			nums = append(nums, fr.Number)
			return true
		}); err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if len(nums) != 10 || nums[0] != 25 || nums[9] != 34 {
			t.Fatalf("%v range scan = %v", f, nums)
		}
	}
}

func TestAllFormatsEarlyStop(t *testing.T) {
	stores := buildAll(t, 40)
	for f, st := range stores {
		count := 0
		st.Scan(0, 40, func(Frame) bool { count++; return count < 5 })
		if count != 5 {
			t.Fatalf("%v early stop visited %d", f, count)
		}
	}
}

func TestLossyFormatsStayFaithful(t *testing.T) {
	stores := buildAll(t, 30)
	for f, st := range stores {
		st.Scan(10, 11, func(fr Frame) bool {
			orig := genFrame(fr.Number, 64, 48)
			mse := codec.MSE(orig, fr.Image)
			limit := 0.0
			if f != FormatRaw {
				limit = 60 // lossy formats allowed moderate error at High quality
			}
			if mse > limit {
				t.Fatalf("%v frame MSE %.1f over %v", f, mse, limit)
			}
			return true
		})
	}
}

func TestStorageOrdering(t *testing.T) {
	// RAW must be biggest; the inter-coded formats must beat the intra one
	// on mostly-static content; DLV whole-stream <= segmented (more
	// I-frames in segments).
	stores := buildAll(t, 64)
	size := map[Format]int64{}
	for f, st := range stores {
		b, err := st.StorageBytes()
		if err != nil {
			t.Fatalf("%v StorageBytes: %v", f, err)
		}
		if b <= 0 {
			t.Fatalf("%v StorageBytes = %d", f, b)
		}
		size[f] = b
	}
	if !(size[FormatRaw] > size[FormatDLJ] && size[FormatDLJ] > size[FormatDLV]) {
		t.Fatalf("size ordering violated: %v", size)
	}
	if size[FormatSegmented] < size[FormatDLV] {
		t.Fatalf("segmented (%d) smaller than whole-stream DLV (%d)", size[FormatSegmented], size[FormatDLV])
	}
	if ratio := float64(size[FormatRaw]) / float64(size[FormatDLV]); ratio < 10 {
		t.Fatalf("DLV compression ratio %.1fx below 10x", ratio)
	}
}

func TestOutOfOrderAppendRejected(t *testing.T) {
	s := newStoreKV(t)
	b, _ := s.Bucket("ff")
	ff := NewFrameFile(b, false, codec.QualityHigh)
	img := genFrame(0, 32, 32)
	if err := ff.Append(Frame{Number: 5, Image: img}); err != nil {
		t.Fatal(err)
	}
	if err := ff.Append(Frame{Number: 5, Image: img}); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("duplicate append err = %v", err)
	}
	if err := ff.Append(Frame{Number: 3, Image: img}); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("regressing append err = %v", err)
	}

	ef, _ := NewEncodedFile(filepath.Join(t.TempDir(), "e.dlv"), codec.QualityHigh, 8)
	ef.Append(Frame{Number: 0, Image: img})
	if err := ef.Append(Frame{Number: 2, Image: img}); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("gap append err = %v", err)
	}
}

func TestSegmentedPartialTailClip(t *testing.T) {
	s := newStoreKV(t)
	b, _ := s.Bucket("seg")
	sf := NewSegmentedFile(b, codec.QualityHigh, 8, 16)
	// 20 frames: one full clip + one partial (4 frames).
	if err := Ingest(sf, 20, func(i uint64) *codec.Image { return genFrame(i, 32, 32) }); err != nil {
		t.Fatal(err)
	}
	var count int
	sf.Scan(0, 20, func(Frame) bool { count++; return true })
	if count != 20 {
		t.Fatalf("scan visited %d of 20 (tail clip lost?)", count)
	}
	// Range landing inside the tail clip.
	count = 0
	sf.Scan(17, 20, func(Frame) bool { count++; return true })
	if count != 3 {
		t.Fatalf("tail range visited %d, want 3", count)
	}
}

func TestFrameFilePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.db")
	s, err := kv.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Bucket("frames")
	ff := NewFrameFile(b, true, codec.QualityMedium)
	if err := Ingest(ff, 10, func(i uint64) *codec.Image { return genFrame(i, 32, 32) }); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := kv.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	b2, _ := s2.Bucket("frames")
	ff2 := NewFrameFile(b2, true, codec.QualityMedium)
	count := 0
	if err := ff2.Scan(0, 10, func(Frame) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("reopen scan visited %d", count)
	}
}
