// Package video implements DeepLens's storage layer for video at rest
// (paper §3.1): the Frame File (per-frame records in the embedded kv
// store, sorted by frame number, in RAW or DLJ-compressed form), the
// Encoded File (one sequential DLV stream), and the Segmented File (short
// aligned DLV clips bucketed by start frame). All three expose the same
// temporal-scan interface; what differs — and what Figures 2 and 3
// measure — is storage footprint, decode cost, and whether a temporal
// predicate can be pushed down.
package video

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/codec"
	"repro/internal/kv"
)

// Frame pairs an image with its frame number (the paper also stores wall
// clock time; at fixed fps it is an affine function of Number and lives in
// patch metadata).
type Frame struct {
	Number uint64
	Image  *codec.Image
}

// Format selects a physical layout for a stored video.
type Format int

// Supported storage formats.
const (
	FormatRaw       Format = iota // Frame File, raw pixels
	FormatDLJ                     // Frame File, intra-coded frames ("JPEG")
	FormatDLV                     // Encoded File, sequential inter-coded stream
	FormatSegmented               // Segmented File, aligned DLV clips
)

func (f Format) String() string {
	switch f {
	case FormatRaw:
		return "frame-file-raw"
	case FormatDLJ:
		return "frame-file-dlj"
	case FormatDLV:
		return "encoded-dlv"
	case FormatSegmented:
		return "segmented-dlv"
	default:
		return fmt.Sprintf("format(%d)", int(f))
	}
}

// Store is a stored video: append frames in order, then scan temporal
// ranges. Scan visits frames with Number in [lo, hi) in order; fn
// returning false stops early.
type Store interface {
	Format() Format
	Append(f Frame) error
	// Finish flushes buffered state; must be called before Scan.
	Finish() error
	Scan(lo, hi uint64, fn func(Frame) bool) error
	NumFrames() uint64
	// StorageBytes reports the persisted footprint of the video payload.
	StorageBytes() (int64, error)
}

// ErrOutOfOrder is returned when frames are appended non-monotonically.
var ErrOutOfOrder = errors.New("video: frames must be appended in increasing order")

// marshalRaw serializes a raw frame record.
func marshalRaw(img *codec.Image) []byte {
	buf := make([]byte, 8+len(img.Pix))
	binary.LittleEndian.PutUint32(buf[0:], uint32(img.W))
	binary.LittleEndian.PutUint32(buf[4:], uint32(img.H))
	copy(buf[8:], img.Pix)
	return buf
}

func unmarshalRaw(buf []byte) (*codec.Image, error) {
	if len(buf) < 8 {
		return nil, codec.ErrCorrupt
	}
	w := int(binary.LittleEndian.Uint32(buf[0:]))
	h := int(binary.LittleEndian.Uint32(buf[4:]))
	if w <= 0 || h <= 0 || len(buf) != 8+w*h*3 {
		return nil, codec.ErrCorrupt
	}
	return &codec.Image{W: w, H: h, Pix: append([]uint8(nil), buf[8:]...)}, nil
}

// ---------------------------------------------------------- Frame File ----

// FrameFile stores one record per frame in a kv bucket keyed by frame
// number: full temporal filter pushdown, at raw (or intra-coded) size.
type FrameFile struct {
	b       *kv.Bucket
	quality codec.Quality
	intra   bool // DLJ-compress records
	n       uint64
	last    uint64
	started bool
}

// NewFrameFile creates a frame file over bucket b. If intra is true,
// records are DLJ-compressed at quality q.
func NewFrameFile(b *kv.Bucket, intra bool, q codec.Quality) *FrameFile {
	return &FrameFile{b: b, intra: intra, quality: q}
}

// Format implements Store.
func (ff *FrameFile) Format() Format {
	if ff.intra {
		return FormatDLJ
	}
	return FormatRaw
}

// Append implements Store.
func (ff *FrameFile) Append(f Frame) error {
	if ff.started && f.Number <= ff.last {
		return ErrOutOfOrder
	}
	ff.started = true
	ff.last = f.Number
	var rec []byte
	if ff.intra {
		enc, err := codec.EncodeDLJ(f.Image, ff.quality)
		if err != nil {
			return err
		}
		rec = enc
	} else {
		rec = marshalRaw(f.Image)
	}
	if err := ff.b.Put(kv.U64Key(f.Number), rec); err != nil {
		return err
	}
	ff.n++
	return nil
}

// Finish implements Store.
func (ff *FrameFile) Finish() error { return nil }

// NumFrames implements Store.
func (ff *FrameFile) NumFrames() uint64 { return ff.n }

// Scan implements Store: the bucket's ordered scan gives exact pushdown.
func (ff *FrameFile) Scan(lo, hi uint64, fn func(Frame) bool) error {
	var scanErr error
	err := ff.b.Scan(kv.U64Key(lo), kv.U64Key(hi), func(k, v []byte) bool {
		var img *codec.Image
		var err error
		if ff.intra {
			img, err = codec.DecodeDLJ(v)
		} else {
			img, err = unmarshalRaw(v)
		}
		if err != nil {
			scanErr = err
			return false
		}
		return fn(Frame{Number: kv.ParseU64Key(k), Image: img})
	})
	if scanErr != nil {
		return scanErr
	}
	return err
}

// StorageBytes implements Store.
func (ff *FrameFile) StorageBytes() (int64, error) {
	var total int64
	err := ff.b.Scan(nil, nil, func(k, v []byte) bool {
		total += int64(len(k) + len(v))
		return true
	})
	return total, err
}

// -------------------------------------------------------- Encoded File ----

// EncodedFile stores the whole video as one DLV stream in a flat file.
// Smallest footprint; scans must decode sequentially from the start, so a
// temporal predicate cannot be pushed down.
type EncodedFile struct {
	path    string
	quality codec.Quality
	gop     int
	f       *os.File
	w       *codec.DLVWriter
	n       uint64
	first   uint64
	started bool
}

// NewEncodedFile creates (truncates) the DLV stream at path.
func NewEncodedFile(path string, q codec.Quality, gop int) (*EncodedFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &EncodedFile{path: path, quality: q, gop: gop, f: f}, nil
}

// Format implements Store.
func (ef *EncodedFile) Format() Format { return FormatDLV }

// Append implements Store. Frame numbers must be contiguous from the first
// append (a DLV stream has no per-frame index).
func (ef *EncodedFile) Append(fr Frame) error {
	if !ef.started {
		ef.first = fr.Number
		ef.started = true
	} else if fr.Number != ef.first+ef.n {
		return fmt.Errorf("%w: encoded file requires contiguous frames", ErrOutOfOrder)
	}
	if ef.w == nil {
		w, err := codec.NewDLVWriter(ef.f, fr.Image.W, fr.Image.H, ef.quality, ef.gop)
		if err != nil {
			return err
		}
		ef.w = w
	}
	if err := ef.w.WriteFrame(fr.Image); err != nil {
		return err
	}
	ef.n++
	return nil
}

// Finish implements Store.
func (ef *EncodedFile) Finish() error {
	if ef.w != nil {
		if err := ef.w.Close(); err != nil {
			return err
		}
	}
	return ef.f.Sync()
}

// NumFrames implements Store.
func (ef *EncodedFile) NumFrames() uint64 { return ef.n }

// Scan implements Store. The whole prefix [0, hi) is decoded — the codec
// is sequential — and frames below lo are discarded after decoding.
func (ef *EncodedFile) Scan(lo, hi uint64, fn func(Frame) bool) error {
	r, err := os.Open(ef.path)
	if err != nil {
		return err
	}
	defer r.Close()
	dec, err := codec.NewDLVReader(r)
	if err != nil {
		return err
	}
	num := ef.first
	for num < hi {
		img, err := dec.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if num >= lo {
			if !fn(Frame{Number: num, Image: img}) {
				return nil
			}
		}
		num++
	}
	return nil
}

// StorageBytes implements Store.
func (ef *EncodedFile) StorageBytes() (int64, error) {
	st, err := os.Stat(ef.path)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// ------------------------------------------------------ Segmented File ----

// SegmentedFile stores aligned fixed-length DLV clips in a kv bucket keyed
// by start frame: coarse-grained pushdown (seek to the clip containing lo)
// plus inter-frame compression within clips. ClipLen trades the two
// (paper §7.1 tuned it manually; the ablation bench sweeps it).
type SegmentedFile struct {
	b       *kv.Bucket
	quality codec.Quality
	gop     int
	ClipLen uint64
	buf     []*codec.Image
	bufAt   uint64
	n       uint64
	started bool
}

// NewSegmentedFile creates a segmented store over bucket b with the given
// clip length.
func NewSegmentedFile(b *kv.Bucket, q codec.Quality, gop int, clipLen uint64) *SegmentedFile {
	if clipLen == 0 {
		clipLen = 32
	}
	return &SegmentedFile{b: b, quality: q, gop: gop, ClipLen: clipLen}
}

// Format implements Store.
func (sf *SegmentedFile) Format() Format { return FormatSegmented }

// Append implements Store. Frames must be contiguous from the first.
func (sf *SegmentedFile) Append(fr Frame) error {
	if !sf.started {
		sf.started = true
		sf.bufAt = fr.Number
	} else if fr.Number != sf.bufAt+uint64(len(sf.buf)) {
		return fmt.Errorf("%w: segmented file requires contiguous frames", ErrOutOfOrder)
	}
	sf.buf = append(sf.buf, fr.Image)
	sf.n++
	if uint64(len(sf.buf)) == sf.ClipLen {
		return sf.flushClip()
	}
	return nil
}

func (sf *SegmentedFile) flushClip() error {
	if len(sf.buf) == 0 {
		return nil
	}
	enc, err := codec.EncodeDLV(sf.buf, sf.quality, sf.gop)
	if err != nil {
		return err
	}
	if err := sf.b.Put(kv.U64Key(sf.bufAt), enc); err != nil {
		return err
	}
	sf.bufAt += uint64(len(sf.buf))
	sf.buf = sf.buf[:0]
	return nil
}

// Finish implements Store: flushes the trailing partial clip.
func (sf *SegmentedFile) Finish() error { return sf.flushClip() }

// NumFrames implements Store.
func (sf *SegmentedFile) NumFrames() uint64 { return sf.n }

// Scan implements Store: seeks to the clip containing lo, then decodes
// whole clips (coarse pushdown) and filters frames inside them.
func (sf *SegmentedFile) Scan(lo, hi uint64, fn func(Frame) bool) error {
	if hi <= lo {
		return nil
	}
	// Clips are aligned on ClipLen boundaries (ingest starts at frame 0),
	// so the clip covering lo starts at the previous boundary.
	var scanErr error
	startKey := lo - (lo % sf.ClipLen)
	err := sf.b.Scan(kv.U64Key(startKey), kv.U64Key(hi), func(k, v []byte) bool {
		clipStart := kv.ParseU64Key(k)
		frames, err := codec.DecodeDLV(v)
		if err != nil {
			scanErr = err
			return false
		}
		for i, img := range frames {
			num := clipStart + uint64(i)
			if num < lo {
				continue
			}
			if num >= hi {
				return false
			}
			if !fn(Frame{Number: num, Image: img}) {
				return false
			}
		}
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	return err
}

// StorageBytes implements Store.
func (sf *SegmentedFile) StorageBytes() (int64, error) {
	var total int64
	err := sf.b.Scan(nil, nil, func(k, v []byte) bool {
		total += int64(len(k) + len(v))
		return true
	})
	return total, err
}

// Ingest copies frames [0, n) produced by gen into store, calling Finish.
func Ingest(store Store, n uint64, gen func(i uint64) *codec.Image) error {
	for i := uint64(0); i < n; i++ {
		if err := store.Append(Frame{Number: i, Image: gen(i)}); err != nil {
			return err
		}
	}
	return store.Finish()
}
