package dataset

import (
	"math"
	"testing"

	"repro/internal/codec"
	"repro/internal/vision"
)

func smallCfg() Config {
	c := Default()
	c.TrafficFrames = 200
	c.PCImages = 40
	c.FootballClips = 2
	c.FootballClipLen = 30
	return c
}

func TestTrafficDeterministic(t *testing.T) {
	cfg := smallCfg()
	a := NewTraffic(cfg)
	b := NewTraffic(cfg)
	ia, _ := a.Render(42)
	ib, _ := b.Render(42)
	if codec.MSE(ia, ib) != 0 {
		t.Fatal("traffic render not deterministic")
	}
}

func TestTrafficHasBothClassesAndVariation(t *testing.T) {
	tr := NewTraffic(smallCfg())
	carFrames, pedFrames, emptyVehicleFrames := 0, 0, 0
	for f := 0; f < tr.Frames; f += 10 {
		gts := tr.Scene.GroundTruth(f)
		hasCar, hasPed := false, false
		for _, gt := range gts {
			switch gt.Class {
			case vision.ClassCar:
				hasCar = true
			case vision.ClassPedestrian:
				hasPed = true
			}
		}
		if hasCar {
			carFrames++
		}
		if hasPed {
			pedFrames++
		}
		if !tr.VehiclePresent(f) {
			emptyVehicleFrames++
		}
	}
	if carFrames == 0 || pedFrames == 0 {
		t.Fatalf("cars in %d frames, peds in %d frames", carFrames, pedFrames)
	}
	if emptyVehicleFrames == 0 {
		t.Fatal("q2 ground truth is trivially all-true (no vehicle-free frames)")
	}
	if tr.DistinctPedestrians <= 0 {
		t.Fatal("no distinct pedestrians")
	}
}

func TestTrafficReappearanceMakesDistinctHard(t *testing.T) {
	tr := NewTraffic(smallCfg())
	// Count pedestrian appearance windows vs distinct IDs.
	windows := 0
	ids := map[uint64]bool{}
	for _, o := range tr.Scene.Objects {
		if o.Class == vision.ClassPedestrian {
			windows++
			ids[o.ID] = true
		}
	}
	if windows <= len(ids) {
		t.Fatalf("windows=%d ids=%d: no identity reappears, q4 would be trivial", windows, len(ids))
	}
}

func TestPedestrianPairsConsistent(t *testing.T) {
	tr := NewTraffic(smallCfg())
	found := false
	for f := 0; f < tr.Frames; f += 7 {
		pairs := tr.PedestrianPairsBehind(f, 0.5)
		for _, p := range pairs {
			if p[0] == p[1] {
				t.Fatal("self-pair in ground truth")
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no behind-pairs in any sampled frame; q6 ground truth empty")
	}
}

func TestFootballTargetVisibleInEveryClip(t *testing.T) {
	fb := NewFootball(smallCfg())
	if len(fb.Clips) != 2 {
		t.Fatalf("clips = %d", len(fb.Clips))
	}
	for c := range fb.Clips {
		traj := fb.TargetTrajectory(c)
		if len(traj) < fb.ClipLen/2 {
			t.Fatalf("clip %d: target visible in only %d/%d frames", c, len(traj), fb.ClipLen)
		}
	}
}

func TestFootballJerseyLegible(t *testing.T) {
	fb := NewFootball(smallCfg())
	ocr := vision.NewJerseyOCR()
	hits := 0
	total := 0
	sc := fb.Clips[0]
	for f := 0; f < fb.ClipLen; f += 5 {
		img, gts := sc.Render(f)
		for _, gt := range gts {
			if gt.Jersey != fb.TargetJersey || gt.Visibility < 0.8 {
				continue
			}
			total++
			patch := img.Crop(gt.X1, gt.Y1, gt.X2, gt.Y2)
			for _, w := range ocr.Recognize(patch) {
				if w.Text == fb.TargetJersey {
					hits++
					break
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("target never cleanly visible")
	}
	if float64(hits)/float64(total) < 0.6 {
		t.Fatalf("jersey OCR hit rate %d/%d below 60%%", hits, total)
	}
}

func TestPCCorpusComposition(t *testing.T) {
	cfg := smallCfg()
	pc := NewPC(cfg)
	if len(pc.Images) < cfg.PCImages {
		t.Fatalf("images = %d", len(pc.Images))
	}
	kinds := map[PCKind]int{}
	withWords := 0
	for _, im := range pc.Images {
		kinds[im.Kind]++
		if len(im.Words) > 0 {
			withWords++
		}
		if err := im.Image.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if kinds[KindPhoto] == 0 || kinds[KindScreenshot] == 0 || kinds[KindDocScan] == 0 {
		t.Fatalf("kinds = %v", kinds)
	}
	if withWords == 0 {
		t.Fatal("no images carry text ground truth")
	}
	if len(pc.NearDupPairs) == 0 {
		t.Fatal("no near-duplicate pairs")
	}
	for _, p := range pc.NearDupPairs {
		if pc.Images[p[1]].DupOf != p[0] {
			t.Fatalf("pair %v inconsistent with DupOf", p)
		}
	}
}

func TestPCNearDuplicatesCloseInFeatureSpace(t *testing.T) {
	pc := NewPC(smallCfg())
	var dupDists, crossDists []float64
	for _, p := range pc.NearDupPairs {
		a := vision.ColorHistogram(pc.Images[p[0]].Image)
		b := vision.ColorHistogram(pc.Images[p[1]].Image)
		dupDists = append(dupDists, l2(a, b))
	}
	// Cross distances between unrelated photos.
	var photoIdx []int
	for i, im := range pc.Images {
		if im.Kind == KindPhoto && im.DupOf == -1 {
			photoIdx = append(photoIdx, i)
		}
	}
	for i := 0; i+1 < len(photoIdx); i += 2 {
		a := vision.ColorHistogram(pc.Images[photoIdx[i]].Image)
		b := vision.ColorHistogram(pc.Images[photoIdx[i+1]].Image)
		crossDists = append(crossDists, l2(a, b))
	}
	if len(dupDists) == 0 || len(crossDists) == 0 {
		t.Skip("not enough pairs at this scale")
	}
	if maxOf(dupDists) >= minOf(crossDists) {
		t.Logf("dup max %.3f, cross min %.3f: distributions overlap (acceptable, thresholded matching still works)", maxOf(dupDists), minOf(crossDists))
	}
	if avg(dupDists) >= avg(crossDists) {
		t.Fatalf("duplicate distances (avg %.3f) not smaller than cross distances (avg %.3f)", avg(dupDists), avg(crossDists))
	}
}

func TestPCDocumentsReadable(t *testing.T) {
	pc := NewPC(smallCfg())
	ocr := vision.NewDocumentOCR()
	checked := 0
	recovered := 0
	for _, im := range pc.Images {
		if im.Kind != KindDocScan || len(im.Words) == 0 || im.DupOf != -1 {
			continue
		}
		words := ocr.Recognize(im.Image)
		got := map[string]bool{}
		for _, w := range words {
			got[w.Text] = true
		}
		for _, want := range im.Words {
			checked++
			if got[want] {
				recovered++
			}
		}
		if checked > 60 {
			break
		}
	}
	if checked == 0 {
		t.Skip("no documents at this scale")
	}
	if float64(recovered)/float64(checked) < 0.8 {
		t.Fatalf("document OCR recovered %d/%d words", recovered, checked)
	}
}

func l2(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return math.Sqrt(s)
}

func avg(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func TestPaperConfigScales(t *testing.T) {
	p := Paper()
	if p.TrafficFrames != 35280 || p.PCImages != 779 || p.FootballClips != 15 {
		t.Fatalf("paper config %+v", p)
	}
	if Describe(p) == "" {
		t.Fatal("empty description")
	}
}
