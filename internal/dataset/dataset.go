// Package dataset generates the paper's three benchmark datasets (§6.1)
// synthetically, with ground truth:
//
//   - PC: a personal-computer image corpus of photographs, screenshots and
//     document scans (paper: 779 images), including planted near-duplicate
//     pairs (q1) and known text content (q5).
//   - TrafficCam: a fixed traffic-camera view with cars and pedestrians on
//     schedules (paper: 24.5 min of 1080p, 35 280 frames), the substrate of
//     q2, q4 and q6.
//   - Football: clips of one team's plays with jersey-numbered players
//     (paper: 15 clips, 15 244 frames), the substrate of q3.
//
// Default configurations render at reduced resolution and frame counts so
// the suite runs on a laptop; Paper() restores paper-scale counts. All
// generation is deterministic in Config.Seed.
package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/codec"
	"repro/internal/vision"
)

// Config scales the generated datasets.
type Config struct {
	Seed int64

	// TrafficCam.
	TrafficW, TrafficH int
	TrafficFrames      int
	TrafficFPS         int

	// PC corpus.
	PCImages int

	// Football.
	FootballClips        int
	FootballClipLen      int
	FootballW, FootballH int
}

// Default returns the laptop-scale configuration used by tests and the
// default bench run.
func Default() Config {
	return Config{
		Seed:     1,
		TrafficW: 192, TrafficH: 108,
		TrafficFrames: 600, TrafficFPS: 24,
		PCImages:      120,
		FootballClips: 5, FootballClipLen: 60,
		FootballW: 160, FootballH: 90,
	}
}

// Paper returns the paper-scale configuration (same reduced resolution;
// full frame/image counts). Figures' *shapes* are scale-robust; EXPERIMENTS.md
// records which configuration produced each number.
func Paper() Config {
	c := Default()
	c.TrafficFrames = 35280
	c.PCImages = 779
	c.FootballClips = 15
	c.FootballClipLen = 1016 // 15 clips x ~1016 frames ~= 15 244 images
	return c
}

// ---------------------------------------------------------- TrafficCam ----

// Traffic is the generated traffic-camera dataset.
type Traffic struct {
	Scene  *vision.Scene
	Frames int
	FPS    int
	// DistinctPedestrians is the number of unique pedestrian identities
	// that ever appear with reasonable visibility (ground truth for q4).
	DistinctPedestrians int
}

// NewTraffic builds the TrafficCam scene: cars entering on a fixed
// schedule and a pool of pedestrian identities, some re-appearing in
// multiple time windows (which is what makes q4's distinct count hard).
func NewTraffic(cfg Config) *Traffic {
	rng := rand.New(rand.NewSource(cfg.Seed))
	w, h := cfg.TrafficW, cfg.TrafficH
	horizon := h / 4
	sc := &vision.Scene{
		W: w, H: h, Horizon: horizon, Focal: float64(h) / 3,
		Background: vision.NewTrafficBackground(w, h, horizon),
	}
	id := uint64(1)

	// Cars: one enters roughly every 40 frames, drives across and exits.
	for t := 0; t < cfg.TrafficFrames; t += 30 + rng.Intn(25) {
		car := vision.NewObject(id, vision.ClassCar, rng)
		id++
		car.VX = 0.4 + rng.Float64()*0.6
		car.X0 = -6
		car.Z0 = 3.5 + rng.Float64()*7
		car.Appear = t
		car.Vanish = t + int(112/car.VX)
		sc.Objects = append(sc.Objects, car)
	}

	// Pedestrians: a pool of identities; each gets 1-3 disjoint appearance
	// windows (so raw per-window counting overestimates distinct
	// identities — the deduplication q4 must do). Windows of one identity
	// never overlap: the same person cannot be on screen twice.
	nPed := 6 + cfg.TrafficFrames/150
	distinct := 0
	for p := 0; p < nPed; p++ {
		base := vision.NewObject(id, vision.ClassPedestrian, rng)
		id++
		appearances := 1 + rng.Intn(3)
		shown := false
		cursor := rng.Intn(cfg.TrafficFrames/2 + 1)
		for a := 0; a < appearances; a++ {
			o := *base // same identity: same ID and color signature
			o.X0 = 5 + rng.Float64()*85
			o.VX = (rng.Float64() - 0.5) * 0.4
			o.Z0 = 2.5 + rng.Float64()*5
			o.SwayAmp = 0.4
			o.SwayFreq = 0.15
			o.Appear = cursor
			o.Vanish = o.Appear + 60 + rng.Intn(120)
			cursor = o.Vanish + 30 + rng.Intn(cfg.TrafficFrames/3+1)
			if o.Appear < cfg.TrafficFrames {
				shown = true
			}
			sc.Objects = append(sc.Objects, &o)
		}
		if shown {
			distinct++
		}
	}
	return &Traffic{Scene: sc, Frames: cfg.TrafficFrames, FPS: cfg.TrafficFPS, DistinctPedestrians: distinct}
}

// Render draws frame t with exact ground truth.
func (tr *Traffic) Render(t int) (*codec.Image, []vision.GT) { return tr.Scene.Render(t) }

// VehiclePresent reports whether frame t contains at least one car with
// visibility >= 0.25 (ground truth for q2).
func (tr *Traffic) VehiclePresent(t int) bool {
	for _, gt := range tr.Scene.GroundTruth(t) {
		if gt.Class == vision.ClassCar && gt.Visibility >= 0.25 && (gt.X2-gt.X1)*(gt.Y2-gt.Y1) >= 12 {
			return true
		}
	}
	return false
}

// PedestrianPairsBehind returns ground-truth (p1 behind p2) ordered pairs
// among pedestrians visible in frame t (q6), requiring a depth separation
// of at least minGap to avoid ties.
func (tr *Traffic) PedestrianPairsBehind(t int, minGap float64) [][2]uint64 {
	gts := tr.Scene.GroundTruth(t)
	var peds []vision.GT
	for _, gt := range gts {
		if gt.Class == vision.ClassPedestrian && gt.Visibility >= 0.5 {
			peds = append(peds, gt)
		}
	}
	var out [][2]uint64
	for i := range peds {
		for j := range peds {
			if i == j {
				continue
			}
			if peds[i].Depth > peds[j].Depth+minGap { // i farther: i behind j
				out = append(out, [2]uint64{peds[i].ID, peds[j].ID})
			}
		}
	}
	return out
}

// ------------------------------------------------------------ Football ----

// Football is the generated football dataset: clips of the same team, one
// target player number appearing in every clip.
type Football struct {
	Clips        []*vision.Scene
	ClipLen      int
	FPS          int
	TargetJersey string
}

// NewFootball builds the clips. Each clip contains 6-9 players of the same
// team (green family), all with distinct jersey numbers; the target player
// (jersey "7") appears near the camera in every clip so its number is
// legible (q3 tracks it).
func NewFootball(cfg Config) *Football {
	rng := rand.New(rand.NewSource(cfg.Seed + 100))
	fb := &Football{ClipLen: cfg.FootballClipLen, FPS: 24, TargetJersey: "7"}
	id := uint64(1)
	for c := 0; c < cfg.FootballClips; c++ {
		w, h := cfg.FootballW, cfg.FootballH
		horizon := h / 5
		sc := &vision.Scene{
			W: w, H: h, Horizon: horizon, Focal: float64(h) / 2.2,
			Background: vision.NewFieldBackground(w, h, horizon),
		}
		// Target player: close to camera, slow drift, whole clip.
		target := vision.NewObject(id, vision.ClassPlayer, rng)
		id++
		target.Jersey = fb.TargetJersey
		target.X0 = 20 + rng.Float64()*40
		target.VX = 0.15 + rng.Float64()*0.2
		target.Z0 = 1.9 + rng.Float64()*0.5
		target.SwayAmp = 1.2
		target.SwayFreq = 0.12
		target.Appear, target.Vanish = 0, cfg.FootballClipLen
		sc.Objects = append(sc.Objects, target)
		// Supporting players, distinct numbers != 7.
		numbers := []string{"3", "12", "25", "41", "58", "66", "80", "94"}
		nSupport := 5 + rng.Intn(4)
		for p := 0; p < nSupport && p < len(numbers); p++ {
			o := vision.NewObject(id, vision.ClassPlayer, rng)
			id++
			o.Jersey = numbers[p]
			o.X0 = 5 + rng.Float64()*90
			o.VX = (rng.Float64() - 0.5) * 0.6
			o.Z0 = 2.5 + rng.Float64()*4
			o.SwayAmp = 0.8
			o.SwayFreq = 0.1 + rng.Float64()*0.1
			o.Appear = rng.Intn(cfg.FootballClipLen / 2)
			o.Vanish = o.Appear + cfg.FootballClipLen/2 + rng.Intn(cfg.FootballClipLen/2)
			sc.Objects = append(sc.Objects, o)
		}
		fb.Clips = append(fb.Clips, sc)
	}
	return fb
}

// TargetTrajectory returns the ground-truth bbox centers of the target
// player in clip c for every frame where it is visible (q3's expected
// output).
func (fb *Football) TargetTrajectory(c int) map[int][2]int {
	out := make(map[int][2]int)
	sc := fb.Clips[c]
	for t := 0; t < fb.ClipLen; t++ {
		for _, gt := range sc.GroundTruth(t) {
			if gt.Jersey == fb.TargetJersey && gt.Visibility >= 0.5 {
				out[t] = [2]int{(gt.X1 + gt.X2) / 2, (gt.Y1 + gt.Y2) / 2}
			}
		}
	}
	return out
}

// -------------------------------------------------------------- PC -------

// PCKind labels the three image types in the PC corpus.
type PCKind int

// PC image kinds.
const (
	KindPhoto PCKind = iota
	KindScreenshot
	KindDocScan
)

func (k PCKind) String() string {
	switch k {
	case KindPhoto:
		return "photo"
	case KindScreenshot:
		return "screenshot"
	default:
		return "docscan"
	}
}

// PCImage is one corpus image with its ground truth.
type PCImage struct {
	Kind  PCKind
	Image *codec.Image
	// Words lists the exact strings rendered into the image (empty for
	// photos).
	Words []string
	// DupOf is the index of the image this one near-duplicates, or -1.
	DupOf int
}

// PC is the generated personal-computer corpus.
type PC struct {
	Images []PCImage
	// NearDupPairs lists ground-truth near-duplicate pairs (i < j).
	NearDupPairs [][2]int
	// Vocabulary is the word list documents draw from.
	Vocabulary []string
}

// Vocabulary returns the closed word list used by the generator (q5 picks
// targets from it).
func vocabulary() []string {
	return []string{
		"INVOICE", "REPORT", "SUMMARY", "BUDGET", "MEETING", "PROJECT",
		"DRAFT", "FINAL", "REVIEW", "NOTES", "AGENDA", "MEMO",
		"TOTAL", "AMOUNT", "DATE", "CLIENT", "ORDER", "RECEIPT",
		"TAX", "LEDGER", "PAYROLL", "CONTRACT", "POLICY", "CLAIM",
	}
}

// NewPC generates the corpus: ~45% photos, ~25% screenshots, ~30% document
// scans, plus near-duplicates for about 8% of images (noise + slight
// brightness shift, the classic reverse-image-search positives).
func NewPC(cfg Config) *PC {
	rng := rand.New(rand.NewSource(cfg.Seed + 200))
	pc := &PC{Vocabulary: vocabulary()}
	for i := 0; i < cfg.PCImages; i++ {
		r := rng.Float64()
		var img PCImage
		switch {
		case r < 0.45:
			img = genPhoto(rng)
		case r < 0.70:
			img = genScreenshot(rng, pc.Vocabulary)
		default:
			img = genDocScan(rng, pc.Vocabulary)
		}
		img.DupOf = -1
		pc.Images = append(pc.Images, img)
	}
	// Near-duplicates: perturb ~8% of existing images.
	nDup := cfg.PCImages * 8 / 100
	for d := 0; d < nDup; d++ {
		src := rng.Intn(len(pc.Images))
		for pc.Images[src].DupOf != -1 { // don't chain duplicates
			src = rng.Intn(len(pc.Images))
		}
		dup := perturb(pc.Images[src], rng)
		dup.DupOf = src
		pc.Images = append(pc.Images, dup)
		pc.NearDupPairs = append(pc.NearDupPairs, [2]int{src, len(pc.Images) - 1})
	}
	return pc
}

// genPhoto renders a photo-like image: gradient sky/ground plus colored
// shapes.
func genPhoto(rng *rand.Rand) PCImage {
	w := 80 + rng.Intn(64)
	h := 60 + rng.Intn(48)
	img := codec.NewImage(w, h)
	// Two-band gradient with random palette.
	top := [3]uint8{uint8(120 + rng.Intn(120)), uint8(120 + rng.Intn(120)), uint8(150 + rng.Intn(100))}
	bot := [3]uint8{uint8(40 + rng.Intn(120)), uint8(80 + rng.Intn(120)), uint8(40 + rng.Intn(100))}
	split := h / 3 * 2
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			src := top
			if y >= split {
				src = bot
			}
			f := float64(y) / float64(h)
			for c := 0; c < 3; c++ {
				img.Set(x, y, c, uint8(float64(src[c])*(1-0.3*f)))
			}
		}
	}
	// Shapes.
	for s := 0; s < 3+rng.Intn(5); s++ {
		col := [3]uint8{uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256))}
		sx, sy := rng.Intn(w), rng.Intn(h)
		sw, sh := 5+rng.Intn(w/3), 5+rng.Intn(h/3)
		for y := sy; y < sy+sh && y < h; y++ {
			for x := sx; x < sx+sw && x < w; x++ {
				img.Set(x, y, 0, col[0])
				img.Set(x, y, 1, col[1])
				img.Set(x, y, 2, col[2])
			}
		}
	}
	return PCImage{Kind: KindPhoto, Image: img}
}

// genScreenshot renders a UI-like image: panels, a title bar, and a couple
// of text labels.
func genScreenshot(rng *rand.Rand, vocab []string) PCImage {
	w := 128 + rng.Intn(64)
	h := 80 + rng.Intn(40)
	img := codec.NewImage(w, h)
	chrome := uint8(210 + rng.Intn(40))
	for i := range img.Pix {
		img.Pix[i] = chrome
	}
	// Title bar in an app-specific accent color.
	bar := [3]uint8{uint8(40 + rng.Intn(160)), uint8(40 + rng.Intn(160)), uint8(90 + rng.Intn(160))}
	for y := 0; y < 10; y++ {
		for x := 0; x < w; x++ {
			img.Set(x, y, 0, bar[0])
			img.Set(x, y, 1, bar[1])
			img.Set(x, y, 2, bar[2])
		}
	}
	// Panels.
	for p := 0; p < 2+rng.Intn(3); p++ {
		px, py := rng.Intn(w/2), 12+rng.Intn(h/2)
		pw, ph := 20+rng.Intn(w/2), 10+rng.Intn(h/3)
		shade := uint8(180 + rng.Intn(60))
		for y := py; y < py+ph && y < h; y++ {
			for x := px; x < px+pw && x < w; x++ {
				img.Set(x, y, 0, shade)
				img.Set(x, y, 1, shade)
				img.Set(x, y, 2, shade)
			}
		}
	}
	// Labels.
	var words []string
	nw := 1 + rng.Intn(2)
	for i := 0; i < nw; i++ {
		word := vocab[rng.Intn(len(vocab))]
		x := 4 + rng.Intn(max(1, w-len(word)*12))
		y := 14 + i*16
		vision.DrawString(img, word, x, y, 1, [3]uint8{30, 30, 30})
		words = append(words, word)
	}
	return PCImage{Kind: KindScreenshot, Image: img, Words: words}
}

// genDocScan renders a document: tinted page with a letterhead band and
// rows of words. The letterhead and tint individualize each document so
// that distinct documents separate in feature space (near-duplicate
// ground truth stays meaningful).
func genDocScan(rng *rand.Rand, vocab []string) PCImage {
	w := 110 + rng.Intn(40)
	h := 130 + rng.Intn(50)
	img := codec.NewImage(w, h)
	tint := [3]uint8{uint8(238 + rng.Intn(17)), uint8(238 + rng.Intn(17)), uint8(236 + rng.Intn(19))}
	for i := 0; i < w*h; i++ {
		img.Pix[i*3] = tint[0]
		img.Pix[i*3+1] = tint[1]
		img.Pix[i*3+2] = tint[2]
	}
	// Letterhead band.
	head := [3]uint8{uint8(70 + rng.Intn(170)), uint8(70 + rng.Intn(170)), uint8(70 + rng.Intn(170))}
	bandH := 6 + rng.Intn(10)
	for y := 0; y < bandH; y++ {
		for x := 0; x < w; x++ {
			img.Set(x, y, 0, head[0])
			img.Set(x, y, 1, head[1])
			img.Set(x, y, 2, head[2])
		}
	}
	var words []string
	y := bandH + 6
	for y < h-12 {
		x := 6
		for x < w-40 {
			word := vocab[rng.Intn(len(vocab))]
			if x+len(word)*6 >= w-4 {
				break
			}
			vision.DrawString(img, word, x, y, 1, [3]uint8{25, 25, 25})
			words = append(words, word)
			x += len(word)*6 + 8
		}
		y += 12
	}
	return PCImage{Kind: KindDocScan, Image: img, Words: words}
}

// perturb produces a near-duplicate: additive noise plus a small uniform
// brightness shift.
func perturb(src PCImage, rng *rand.Rand) PCImage {
	img := src.Image.Clone()
	shift := rng.Intn(5) - 2
	for i := range img.Pix {
		v := int(img.Pix[i]) + shift + rng.Intn(3) - 1
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		img.Pix[i] = uint8(v)
	}
	return PCImage{Kind: src.Kind, Image: img, Words: append([]string(nil), src.Words...)}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Describe summarizes a configuration for logs and EXPERIMENTS.md.
func Describe(cfg Config) string {
	return fmt.Sprintf("traffic=%dx%d/%df pc=%d football=%dx%d clips=%d len=%d seed=%d",
		cfg.TrafficW, cfg.TrafficH, cfg.TrafficFrames, cfg.PCImages,
		cfg.FootballW, cfg.FootballH, cfg.FootballClips, cfg.FootballClipLen, cfg.Seed)
}
