package btree_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/btree"
	"repro/internal/kv"
)

func newPager(t testing.TB) *kv.Pager {
	t.Helper()
	p, err := kv.OpenPager(filepath.Join(t.TempDir(), "t.db"))
	if err != nil {
		t.Fatalf("open pager: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestEmptyTree(t *testing.T) {
	tr := btree.New(newPager(t))
	if _, err := tr.Get([]byte("k")); err != btree.ErrNotFound {
		t.Fatalf("Get on empty tree: err = %v, want btree.ErrNotFound", err)
	}
	if err := tr.Delete([]byte("k")); err != btree.ErrNotFound {
		t.Fatalf("Delete on empty tree: err = %v, want btree.ErrNotFound", err)
	}
	n, err := tr.Len()
	if err != nil || n != 0 {
		t.Fatalf("Len = %d, %v; want 0, nil", n, err)
	}
	if c := tr.First(); c.Valid() {
		t.Fatal("cursor on empty tree is Valid")
	}
}

func TestPutGetSingle(t *testing.T) {
	tr := btree.New(newPager(t))
	if err := tr.Put([]byte("alpha"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := tr.Get([]byte("alpha"))
	if err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := tr.Get([]byte("beta")); err != btree.ErrNotFound {
		t.Fatalf("missing key: err = %v", err)
	}
}

func TestReplaceValue(t *testing.T) {
	tr := btree.New(newPager(t))
	key := []byte("k")
	for i := 0; i < 10; i++ {
		val := []byte(fmt.Sprintf("value-%d", i))
		if err := tr.Put(key, val); err != nil {
			t.Fatal(err)
		}
		got, err := tr.Get(key)
		if err != nil || !bytes.Equal(got, val) {
			t.Fatalf("iteration %d: Get = %q, %v; want %q", i, got, err, val)
		}
	}
	if n, _ := tr.Len(); n != 1 {
		t.Fatalf("Len = %d after replacements, want 1", n)
	}
}

func TestManyKeysSplitsAndOrder(t *testing.T) {
	tr := btree.New(newPager(t))
	const n = 5000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v := []byte(fmt.Sprintf("val-%d", i))
		if err := tr.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	// Every key readable.
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v, err := tr.Get(k)
		if err != nil {
			t.Fatalf("Get(%s): %v", k, err)
		}
		if want := fmt.Sprintf("val-%d", i); string(v) != want {
			t.Fatalf("Get(%s) = %q, want %q", k, v, want)
		}
	}
	// Full scan is sorted and complete.
	var keys []string
	if err := tr.Scan(nil, nil, func(k, _ []byte) bool {
		keys = append(keys, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != n {
		t.Fatalf("scan returned %d keys, want %d", len(keys), n)
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatal("scan output is not sorted")
	}
}

func TestRangeScan(t *testing.T) {
	tr := btree.New(newPager(t))
	for i := 0; i < 1000; i++ {
		var k [8]byte
		binary.BigEndian.PutUint64(k[:], uint64(i))
		if err := tr.Put(k[:], []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	lo, hi := make([]byte, 8), make([]byte, 8)
	binary.BigEndian.PutUint64(lo, 100)
	binary.BigEndian.PutUint64(hi, 200)
	var got []uint64
	if err := tr.Scan(lo, hi, func(k, _ []byte) bool {
		got = append(got, binary.BigEndian.Uint64(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("range scan returned %d entries, want 100", len(got))
	}
	for i, v := range got {
		if v != uint64(100+i) {
			t.Fatalf("got[%d] = %d, want %d", i, v, 100+i)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := btree.New(newPager(t))
	for i := 0; i < 100; i++ {
		tr.Put([]byte(fmt.Sprintf("%03d", i)), nil)
	}
	count := 0
	tr.Scan(nil, nil, func(_, _ []byte) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early-stop scan visited %d entries, want 10", count)
	}
}

func TestLargeValuesOverflow(t *testing.T) {
	tr := btree.New(newPager(t))
	vals := map[string][]byte{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("big-%03d", i)
		v := make([]byte, 2000+rng.Intn(20000)) // always > inline threshold
		rng.Read(v)
		vals[k] = v
		if err := tr.Put([]byte(k), v); err != nil {
			t.Fatal(err)
		}
	}
	for k, want := range vals {
		got, err := tr.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%s): %v", k, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Get(%s): value mismatch (%d vs %d bytes)", k, len(got), len(want))
		}
	}
}

func TestDelete(t *testing.T) {
	tr := btree.New(newPager(t))
	for i := 0; i < 500; i++ {
		tr.Put([]byte(fmt.Sprintf("%04d", i)), []byte("v"))
	}
	for i := 0; i < 500; i += 2 {
		if err := tr.Delete([]byte(fmt.Sprintf("%04d", i))); err != nil {
			t.Fatalf("Delete(%04d): %v", i, err)
		}
	}
	for i := 0; i < 500; i++ {
		_, err := tr.Get([]byte(fmt.Sprintf("%04d", i)))
		if i%2 == 0 && err != btree.ErrNotFound {
			t.Fatalf("deleted key %04d still present (err=%v)", i, err)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("kept key %04d lost: %v", i, err)
		}
	}
	if n, _ := tr.Len(); n != 250 {
		t.Fatalf("Len = %d, want 250", n)
	}
}

func TestPersistAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.db")
	p, err := kv.OpenPager(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := btree.New(p)
	for i := 0; i < 300; i++ {
		tr.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	root := tr.Root()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := kv.OpenPager(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	tr2 := btree.Open(p2, root)
	for i := 0; i < 300; i++ {
		v, err := tr2.Get([]byte(fmt.Sprintf("k%04d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("after reopen Get(k%04d) = %q, %v", i, v, err)
		}
	}
}

func TestKeyTooLong(t *testing.T) {
	tr := btree.New(newPager(t))
	if err := tr.Put(make([]byte, 600), nil); err == nil {
		t.Fatal("Put with 600-byte key succeeded, want error")
	}
}

// TestQuickModelCheck drives the tree with random operations against a map
// model and checks full agreement.
func TestQuickModelCheck(t *testing.T) {
	tr := btree.New(newPager(t))
	model := map[string]string{}
	rng := rand.New(rand.NewSource(42))
	keyspace := func() string { return fmt.Sprintf("k%03d", rng.Intn(400)) }
	for op := 0; op < 20000; op++ {
		k := keyspace()
		switch rng.Intn(3) {
		case 0, 1: // put
			v := fmt.Sprintf("v%d", rng.Int63())
			model[k] = v
			if err := tr.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
		case 2: // delete
			_, inModel := model[k]
			err := tr.Delete([]byte(k))
			if inModel && err != nil {
				t.Fatalf("Delete(%s): %v, model has it", k, err)
			}
			if !inModel && err != btree.ErrNotFound {
				t.Fatalf("Delete(%s): %v, model lacks it", k, err)
			}
			delete(model, k)
		}
	}
	// Final agreement: every model entry present with right value, scan count matches.
	for k, v := range model {
		got, err := tr.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("final Get(%s) = %q, %v; want %q", k, got, err, v)
		}
	}
	if n, _ := tr.Len(); n != len(model) {
		t.Fatalf("Len = %d, model has %d", n, len(model))
	}
}

// TestQuickPutGetRoundTrip property: any put key/value pair round-trips.
func TestQuickPutGetRoundTrip(t *testing.T) {
	tr := btree.New(newPager(t))
	f := func(k []byte, v []byte) bool {
		if len(k) == 0 || len(k) > 512 {
			return true // skip out-of-contract keys
		}
		if err := tr.Put(k, v); err != nil {
			return false
		}
		got, err := tr.Get(k)
		return err == nil && bytes.Equal(got, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCursorSeekMidRange(t *testing.T) {
	tr := btree.New(newPager(t))
	for i := 0; i < 100; i += 2 { // even keys only
		tr.Put([]byte(fmt.Sprintf("%03d", i)), nil)
	}
	c := tr.Seek([]byte("051")) // odd: should land on 052
	if !c.Valid() {
		t.Fatal("cursor invalid")
	}
	if string(c.Key()) != "052" {
		t.Fatalf("Seek(051) landed on %s, want 052", c.Key())
	}
}
