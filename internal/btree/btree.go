// Package btree implements the on-disk B+ tree used for DeepLens buckets
// and single-dimensional indexes (the paper's BerkeleyDB B+ trees). Keys
// and values are byte strings; keys are ordered by bytes.Compare. Values
// larger than an inline threshold are spilled to overflow-page chains via
// the backing pager. Leaves are chained for ordered range scans, which is
// what enables the Frame File's temporal filter pushdown.
//
// Deletion is lazy: entries are removed in place without rebalancing, which
// is sufficient for the catalog/index workloads DeepLens runs (bulk build,
// read-mostly). Scans skip empty leaves.
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Pager is the page-file interface the tree runs on. *kv.Pager satisfies it.
type Pager interface {
	Read(id uint64) ([]byte, error)
	Write(id uint64, buf []byte) error
	Alloc() (uint64, error)
	Free(id uint64) error
	WriteOverflow(val []byte) (uint64, error)
	ReadOverflow(head uint64, total int) ([]byte, error)
	FreeOverflow(head uint64) error
}

const (
	pageSize  = 4096
	typeLeaf  = 1
	typeInner = 2
	maxInline = 1024
	ovflFlag  = 0x80000000
)

// ErrNotFound is returned by Get and Delete when the key is absent.
var ErrNotFound = errors.New("btree: key not found")

var errCorrupt = errors.New("btree: corrupt node page")

// Tree is a B+ tree rooted at a page of the backing pager. A zero root is
// an empty tree; the root page id changes as the root splits, so container
// code must persist Root() after mutations.
type Tree struct {
	p     Pager
	root  uint64
	nodes map[uint64]*node // decoded-node cache (write-through)
}

const maxNodeCache = 1 << 14

// New creates an empty tree on p.
func New(p Pager) *Tree { return &Tree{p: p, nodes: make(map[uint64]*node)} }

// Open attaches to an existing tree rooted at root (0 = empty).
func Open(p Pager, root uint64) *Tree { return &Tree{p: p, root: root, nodes: make(map[uint64]*node)} }

// Root returns the current root page id (0 when empty).
func (t *Tree) Root() uint64 { return t.root }

type node struct {
	id       uint64
	leaf     bool
	next     uint64   // leaf: right sibling
	keys     [][]byte //
	vals     [][]byte // leaf: inline values (nil when spilled)
	ovHead   []uint64 // leaf: overflow heads (0 when inline)
	ovLen    []int    // leaf: overflow total lengths
	children []uint64 // inner: len(keys)+1 children
}

func (n *node) size() int {
	s := 11 // type + nkeys + next/child0
	for i, k := range n.keys {
		if n.leaf {
			s += 2 + 4 + len(k)
			if n.ovHead[i] != 0 {
				s += 8
			} else {
				s += len(n.vals[i])
			}
		} else {
			s += 2 + len(k) + 8
		}
	}
	return s
}

// load returns the decoded node for a page, serving repeat loads from the
// tree's write-through cache (pages are only ever mutated through store,
// which keeps the cache coherent).
func (t *Tree) load(id uint64) (*node, error) {
	if n, ok := t.nodes[id]; ok {
		return n, nil
	}
	n, err := t.loadPage(id)
	if err != nil {
		return nil, err
	}
	t.cacheNode(n)
	return n, nil
}

func (t *Tree) cacheNode(n *node) {
	if len(t.nodes) >= maxNodeCache {
		for k := range t.nodes { // evict arbitrary entries
			delete(t.nodes, k)
			if len(t.nodes) < maxNodeCache/2 {
				break
			}
		}
	}
	t.nodes[n.id] = n
}

func (t *Tree) loadPage(id uint64) (*node, error) {
	buf, err := t.p.Read(id)
	if err != nil {
		return nil, err
	}
	n := &node{id: id}
	switch buf[0] {
	case typeLeaf:
		n.leaf = true
	case typeInner:
	default:
		return nil, fmt.Errorf("%w: page %d type %d", errCorrupt, id, buf[0])
	}
	nk := int(binary.LittleEndian.Uint16(buf[1:]))
	off := 3
	if n.leaf {
		n.next = binary.LittleEndian.Uint64(buf[off:])
		off += 8
		n.keys = make([][]byte, nk)
		n.vals = make([][]byte, nk)
		n.ovHead = make([]uint64, nk)
		n.ovLen = make([]int, nk)
		for i := 0; i < nk; i++ {
			kl := int(binary.LittleEndian.Uint16(buf[off:]))
			vm := binary.LittleEndian.Uint32(buf[off+2:])
			off += 6
			n.keys[i] = append([]byte(nil), buf[off:off+kl]...)
			off += kl
			if vm&ovflFlag != 0 {
				n.ovHead[i] = binary.LittleEndian.Uint64(buf[off:])
				n.ovLen[i] = int(vm &^ ovflFlag)
				off += 8
			} else {
				vl := int(vm)
				n.vals[i] = append([]byte(nil), buf[off:off+vl]...)
				off += vl
			}
		}
	} else {
		n.children = make([]uint64, 0, nk+1)
		n.children = append(n.children, binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		n.keys = make([][]byte, nk)
		for i := 0; i < nk; i++ {
			kl := int(binary.LittleEndian.Uint16(buf[off:]))
			off += 2
			n.keys[i] = append([]byte(nil), buf[off:off+kl]...)
			off += kl
			n.children = append(n.children, binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
	}
	return n, nil
}

func (t *Tree) store(n *node) error {
	t.cacheNode(n)
	buf := make([]byte, pageSize)
	if n.leaf {
		buf[0] = typeLeaf
	} else {
		buf[0] = typeInner
	}
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(n.keys)))
	off := 3
	if n.leaf {
		binary.LittleEndian.PutUint64(buf[off:], n.next)
		off += 8
		for i, k := range n.keys {
			binary.LittleEndian.PutUint16(buf[off:], uint16(len(k)))
			if n.ovHead[i] != 0 {
				binary.LittleEndian.PutUint32(buf[off+2:], uint32(n.ovLen[i])|ovflFlag)
			} else {
				binary.LittleEndian.PutUint32(buf[off+2:], uint32(len(n.vals[i])))
			}
			off += 6
			copy(buf[off:], k)
			off += len(k)
			if n.ovHead[i] != 0 {
				binary.LittleEndian.PutUint64(buf[off:], n.ovHead[i])
				off += 8
			} else {
				copy(buf[off:], n.vals[i])
				off += len(n.vals[i])
			}
		}
	} else {
		binary.LittleEndian.PutUint64(buf[off:], n.children[0])
		off += 8
		for i, k := range n.keys {
			binary.LittleEndian.PutUint16(buf[off:], uint16(len(k)))
			off += 2
			copy(buf[off:], k)
			off += len(k)
			binary.LittleEndian.PutUint64(buf[off:], n.children[i+1])
			off += 8
		}
	}
	return t.p.Write(n.id, buf)
}

// search returns the index of the first key >= key.
func search(keys [][]byte, key []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value stored under key, or ErrNotFound.
func (t *Tree) Get(key []byte) ([]byte, error) {
	if t.root == 0 {
		return nil, ErrNotFound
	}
	n, err := t.load(t.root)
	if err != nil {
		return nil, err
	}
	for !n.leaf {
		i := search(n.keys, key)
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			i++
		}
		if n, err = t.load(n.children[i]); err != nil {
			return nil, err
		}
	}
	i := search(n.keys, key)
	if i >= len(n.keys) || !bytes.Equal(n.keys[i], key) {
		return nil, ErrNotFound
	}
	return t.value(n, i)
}

func (t *Tree) value(n *node, i int) ([]byte, error) {
	if n.ovHead[i] != 0 {
		return t.p.ReadOverflow(n.ovHead[i], n.ovLen[i])
	}
	return append([]byte(nil), n.vals[i]...), nil
}

// Put inserts or replaces the value under key.
func (t *Tree) Put(key, val []byte) error {
	if len(key) > 512 {
		return fmt.Errorf("btree: key length %d exceeds 512", len(key))
	}
	if t.root == 0 {
		id, err := t.p.Alloc()
		if err != nil {
			return err
		}
		n := &node{id: id, leaf: true}
		if err := t.insertLeaf(n, key, val); err != nil {
			return err
		}
		if err := t.store(n); err != nil {
			return err
		}
		t.root = id
		return nil
	}
	sep, right, err := t.put(t.root, key, val)
	if err != nil {
		return err
	}
	if right != 0 { // root split
		id, err := t.p.Alloc()
		if err != nil {
			return err
		}
		nr := &node{id: id, keys: [][]byte{sep}, children: []uint64{t.root, right}}
		if err := t.store(nr); err != nil {
			return err
		}
		t.root = id
	}
	return nil
}

// put inserts into the subtree at page id, returning a separator key and new
// right-sibling page when the node split.
func (t *Tree) put(id uint64, key, val []byte) ([]byte, uint64, error) {
	n, err := t.load(id)
	if err != nil {
		return nil, 0, err
	}
	if n.leaf {
		if err := t.insertLeaf(n, key, val); err != nil {
			return nil, 0, err
		}
		return t.maybeSplit(n)
	}
	i := search(n.keys, key)
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		i++
	}
	sep, right, err := t.put(n.children[i], key, val)
	if err != nil {
		return nil, 0, err
	}
	if right == 0 {
		return nil, 0, nil
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.children = append(n.children, 0)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
	return t.maybeSplit(n)
}

func (t *Tree) insertLeaf(n *node, key, val []byte) error {
	var head uint64
	var total int
	inline := val
	if len(val) > maxInline {
		h, err := t.p.WriteOverflow(val)
		if err != nil {
			return err
		}
		head, total, inline = h, len(val), nil
	}
	i := search(n.keys, key)
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) { // replace
		if n.ovHead[i] != 0 {
			if err := t.p.FreeOverflow(n.ovHead[i]); err != nil {
				return err
			}
		}
		n.vals[i] = append([]byte(nil), inline...)
		if inline == nil {
			n.vals[i] = nil
		}
		n.ovHead[i], n.ovLen[i] = head, total
		return nil
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = append([]byte(nil), key...)
	n.vals = append(n.vals, nil)
	copy(n.vals[i+1:], n.vals[i:])
	if inline != nil {
		n.vals[i] = append([]byte(nil), inline...)
	} else {
		n.vals[i] = nil
	}
	n.ovHead = append(n.ovHead, 0)
	copy(n.ovHead[i+1:], n.ovHead[i:])
	n.ovHead[i] = head
	n.ovLen = append(n.ovLen, 0)
	copy(n.ovLen[i+1:], n.ovLen[i:])
	n.ovLen[i] = total
	return nil
}

// maybeSplit stores n, splitting it first when it no longer fits a page.
func (t *Tree) maybeSplit(n *node) ([]byte, uint64, error) {
	if n.size() <= pageSize {
		return nil, 0, t.store(n)
	}
	id, err := t.p.Alloc()
	if err != nil {
		return nil, 0, err
	}
	mid := len(n.keys) / 2
	if mid == 0 {
		mid = 1
	}
	r := &node{id: id, leaf: n.leaf}
	var sep []byte
	if n.leaf {
		r.keys = append(r.keys, n.keys[mid:]...)
		r.vals = append(r.vals, n.vals[mid:]...)
		r.ovHead = append(r.ovHead, n.ovHead[mid:]...)
		r.ovLen = append(r.ovLen, n.ovLen[mid:]...)
		r.next = n.next
		n.next = id
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.ovHead = n.ovHead[:mid]
		n.ovLen = n.ovLen[:mid]
		sep = append([]byte(nil), r.keys[0]...)
	} else {
		sep = append([]byte(nil), n.keys[mid]...)
		r.keys = append(r.keys, n.keys[mid+1:]...)
		r.children = append(r.children, n.children[mid+1:]...)
		n.keys = n.keys[:mid]
		n.children = n.children[:mid+1]
	}
	if err := t.store(n); err != nil {
		return nil, 0, err
	}
	if err := t.store(r); err != nil {
		return nil, 0, err
	}
	return sep, id, nil
}

// Delete removes key, returning ErrNotFound when absent. Nodes are not
// rebalanced (lazy deletion).
func (t *Tree) Delete(key []byte) error {
	if t.root == 0 {
		return ErrNotFound
	}
	n, err := t.load(t.root)
	if err != nil {
		return err
	}
	for !n.leaf {
		i := search(n.keys, key)
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			i++
		}
		if n, err = t.load(n.children[i]); err != nil {
			return err
		}
	}
	i := search(n.keys, key)
	if i >= len(n.keys) || !bytes.Equal(n.keys[i], key) {
		return ErrNotFound
	}
	if n.ovHead[i] != 0 {
		if err := t.p.FreeOverflow(n.ovHead[i]); err != nil {
			return err
		}
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	n.ovHead = append(n.ovHead[:i], n.ovHead[i+1:]...)
	n.ovLen = append(n.ovLen[:i], n.ovLen[i+1:]...)
	return t.store(n)
}

// Cursor iterates leaf entries in key order.
type Cursor struct {
	t   *Tree
	n   *node
	idx int
	err error
}

// Seek positions a cursor at the first key >= key.
func (t *Tree) Seek(key []byte) *Cursor {
	c := &Cursor{t: t}
	if t.root == 0 {
		return c
	}
	n, err := t.load(t.root)
	if err != nil {
		c.err = err
		return c
	}
	for !n.leaf {
		i := search(n.keys, key)
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			i++
		}
		if n, err = t.load(n.children[i]); err != nil {
			c.err = err
			return c
		}
	}
	c.n = n
	c.idx = search(n.keys, key)
	c.skipEmpty()
	return c
}

// First positions a cursor at the smallest key.
func (t *Tree) First() *Cursor { return t.Seek(nil) }

func (c *Cursor) skipEmpty() {
	for c.n != nil && c.idx >= len(c.n.keys) {
		if c.n.next == 0 {
			c.n = nil
			return
		}
		n, err := c.t.load(c.n.next)
		if err != nil {
			c.err = err
			c.n = nil
			return
		}
		c.n = n
		c.idx = 0
	}
}

// Valid reports whether the cursor is positioned on an entry.
func (c *Cursor) Valid() bool { return c.n != nil && c.err == nil }

// Err returns the first error the cursor hit, if any.
func (c *Cursor) Err() error { return c.err }

// Key returns the current key. Valid only when Valid().
func (c *Cursor) Key() []byte { return c.n.keys[c.idx] }

// Value returns the current value, materializing overflow chains.
func (c *Cursor) Value() ([]byte, error) { return c.t.value(c.n, c.idx) }

// Next advances to the next entry in key order.
func (c *Cursor) Next() {
	if !c.Valid() {
		return
	}
	c.idx++
	c.skipEmpty()
}

// Scan calls fn for each entry with key in [lo, hi); nil hi means unbounded.
// Iteration stops early when fn returns false.
func (t *Tree) Scan(lo, hi []byte, fn func(k, v []byte) bool) error {
	for c := t.Seek(lo); c.Valid(); c.Next() {
		if hi != nil && bytes.Compare(c.Key(), hi) >= 0 {
			break
		}
		v, err := c.Value()
		if err != nil {
			return err
		}
		if !fn(c.Key(), v) {
			break
		}
	}
	return nil
}

// Len walks the tree counting entries. O(n); intended for stats and tests.
func (t *Tree) Len() (int, error) {
	n := 0
	err := t.Scan(nil, nil, func(_, _ []byte) bool { n++; return true })
	return n, err
}
