package lsh

import (
	"math"
	"math/rand"
	"testing"
)

func TestInvalidParams(t *testing.T) {
	cases := [][3]int{{0, 4, 8}, {8, 0, 8}, {8, 4, 0}, {8, 4, 65}}
	for _, c := range cases {
		if _, err := New(c[0], c[1], c[2], 1); err == nil {
			t.Fatalf("New(%v) accepted", c)
		}
	}
}

func TestDimMismatch(t *testing.T) {
	ix, _ := New(4, 2, 8, 1)
	if err := ix.Insert(Point{Vec: []float32{1, 2}}); err == nil {
		t.Fatal("wrong-dim insert accepted")
	}
}

func TestExactDuplicatesAlwaysFound(t *testing.T) {
	// A query identical to an indexed vector hashes identically in every
	// table, so duplicates are always candidates.
	ix, _ := New(16, 4, 12, 7)
	rng := rand.New(rand.NewSource(7))
	vecs := make([][]float32, 300)
	for i := range vecs {
		v := make([]float32, 16)
		for d := range v {
			v[d] = float32(rng.NormFloat64())
		}
		vecs[i] = v
		if err := ix.Insert(Point{Vec: v, ID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range vecs {
		found := false
		ix.RangeSearch(v, 1e-6, func(p Point, _ float64) bool {
			if p.ID == uint64(i) {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("exact duplicate %d not found", i)
		}
	}
}

func TestNoFalseAcceptsAfterVerification(t *testing.T) {
	ix, _ := New(8, 6, 10, 3)
	rng := rand.New(rand.NewSource(3))
	pts := make([]Point, 500)
	for i := range pts {
		v := make([]float32, 8)
		for d := range v {
			v[d] = float32(rng.NormFloat64())
		}
		pts[i] = Point{Vec: v, ID: uint64(i)}
		ix.Insert(pts[i])
	}
	q := make([]float32, 8)
	eps := 1.0
	ix.RangeSearch(q, eps, func(p Point, d float64) bool {
		if d > eps {
			t.Fatalf("verified result at distance %g > eps %g", d, eps)
		}
		// Recompute exactly.
		var s float64
		for i := range p.Vec {
			dd := float64(p.Vec[i]) - float64(q[i])
			s += dd * dd
		}
		if math.Abs(math.Sqrt(s)-d) > 1e-9 {
			t.Fatal("reported distance wrong")
		}
		return true
	})
}

func TestRecallOnClusteredData(t *testing.T) {
	// Points near a query should mostly be retrieved: plant a tight cluster
	// and check recall is well above chance.
	const dim = 32
	ix, _ := New(dim, 8, 10, 11)
	rng := rand.New(rand.NewSource(11))
	center := make([]float32, dim)
	for d := range center {
		center[d] = float32(rng.NormFloat64())
	}
	const nCluster = 100
	for i := 0; i < nCluster; i++ {
		v := make([]float32, dim)
		for d := range v {
			v[d] = center[d] + float32(rng.NormFloat64()*0.01)
		}
		ix.Insert(Point{Vec: v, ID: uint64(i)})
	}
	// Distractors far away.
	for i := 0; i < 2000; i++ {
		v := make([]float32, dim)
		for d := range v {
			v[d] = float32(rng.NormFloat64() * 5)
		}
		ix.Insert(Point{Vec: v, ID: uint64(nCluster + i)})
	}
	found := 0
	ix.RangeSearch(center, 0.5, func(p Point, _ float64) bool {
		if p.ID < nCluster {
			found++
		}
		return true
	})
	if found < nCluster*7/10 {
		t.Fatalf("cluster recall %d/%d below 70%%", found, nCluster)
	}
}

func TestCandidatesDeduplicated(t *testing.T) {
	ix, _ := New(4, 8, 2, 5) // few bits: heavy collisions across tables
	v := []float32{1, 2, 3, 4}
	ix.Insert(Point{Vec: v, ID: 7})
	cands := ix.Candidates(v)
	n := 0
	for _, c := range cands {
		if c.ID == 7 {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("point 7 appeared %d times in candidates", n)
	}
}

func TestDeterministicAcrossSeeds(t *testing.T) {
	a, _ := New(8, 4, 8, 42)
	b, _ := New(8, 4, 8, 42)
	v := make([]float32, 8)
	for d := range v {
		v[d] = float32(d) - 3.5
	}
	for tbl := 0; tbl < 4; tbl++ {
		if a.signature(tbl, v) != b.signature(tbl, v) {
			t.Fatal("same seed produced different hyperplanes")
		}
	}
}
