// Package lsh implements random-hyperplane locality-sensitive hashing, the
// approximate alternative to exact multidimensional indexing that the
// paper's §7.3 suggests ("for others, locality sensitive hashing or similar
// approximations may suffice"). DeepLens exposes it as an ablation against
// the ball tree on the image-matching queries: cheaper to build and probe,
// at some recall cost.
package lsh

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Point is an indexed vector with a caller-assigned identifier.
type Point struct {
	Vec []float32
	ID  uint64
}

// Index is a multi-table random-hyperplane LSH index. Vectors hashing to
// the same bucket in any table become match candidates; callers verify
// candidates with an exact distance check.
type Index struct {
	dim     int
	nTables int
	nBits   int
	planes  [][][]float32 // [table][bit][dim]
	tables  []map[uint64][]Point
	size    int
}

// New creates an index for dim-dimensional vectors with nTables hash
// tables of nBits-bit signatures. More tables raise recall; more bits
// raise precision. nBits must be <= 64.
func New(dim, nTables, nBits int, seed int64) (*Index, error) {
	if dim <= 0 || nTables <= 0 || nBits <= 0 || nBits > 64 {
		return nil, fmt.Errorf("lsh: invalid parameters dim=%d tables=%d bits=%d", dim, nTables, nBits)
	}
	rng := rand.New(rand.NewSource(seed))
	ix := &Index{dim: dim, nTables: nTables, nBits: nBits}
	ix.planes = make([][][]float32, nTables)
	ix.tables = make([]map[uint64][]Point, nTables)
	for t := 0; t < nTables; t++ {
		ix.planes[t] = make([][]float32, nBits)
		for b := 0; b < nBits; b++ {
			v := make([]float32, dim)
			for d := range v {
				v[d] = float32(rng.NormFloat64())
			}
			ix.planes[t][b] = v
		}
		ix.tables[t] = make(map[uint64][]Point)
	}
	return ix, nil
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return ix.size }

func (ix *Index) signature(table int, v []float32) uint64 {
	var sig uint64
	for b, plane := range ix.planes[table] {
		var dot float32
		for d := range plane {
			dot += plane[d] * v[d]
		}
		if dot >= 0 {
			sig |= 1 << uint(b)
		}
	}
	return sig
}

// Insert adds a point to all tables.
func (ix *Index) Insert(p Point) error {
	if len(p.Vec) != ix.dim {
		return fmt.Errorf("lsh: vector dim %d, index dim %d", len(p.Vec), ix.dim)
	}
	for t := 0; t < ix.nTables; t++ {
		sig := ix.signature(t, p.Vec)
		ix.tables[t][sig] = append(ix.tables[t][sig], p)
	}
	ix.size++
	return nil
}

// Extend returns a new index over the same hyperplanes holding the
// receiver's points plus pts. The receiver is never mutated: bucket maps
// are copied with capacity-clamped slices, so inserts into the extension
// can never scribble on backing arrays a concurrent reader of the old
// index is still scanning.
func (ix *Index) Extend(pts []Point) (*Index, error) {
	nx := &Index{dim: ix.dim, nTables: ix.nTables, nBits: ix.nBits, planes: ix.planes, size: ix.size}
	nx.tables = make([]map[uint64][]Point, ix.nTables)
	for t, tab := range ix.tables {
		m := make(map[uint64][]Point, len(tab))
		for sig, b := range tab {
			m[sig] = b[:len(b):len(b)]
		}
		nx.tables[t] = m
	}
	for _, p := range pts {
		if err := nx.Insert(p); err != nil {
			return nil, err
		}
	}
	return nx, nil
}

// Neighbor is a KNN result: an indexed point with its exact distance.
type Neighbor struct {
	Point Point
	Dist  float64
}

// KNN returns the k nearest candidates to q in ascending (distance, id)
// order, exact-verified over the candidate union. Approximate: a true
// neighbor sharing no bucket with q in any table is missed, so fewer
// than k results can come back even when the index holds more points.
func (ix *Index) KNN(q []float32, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	cands := ix.Candidates(q)
	out := make([]Neighbor, 0, len(cands))
	for _, p := range cands {
		var s float64
		for i := range p.Vec {
			d := float64(p.Vec[i]) - float64(q[i])
			s += d * d
		}
		out = append(out, Neighbor{Point: p, Dist: math.Sqrt(s)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Point.ID < out[j].Point.ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Candidates returns the deduplicated union of bucket contents for q
// across all tables. The result may include false positives and miss true
// neighbors; callers filter with an exact metric.
func (ix *Index) Candidates(q []float32) []Point {
	seen := make(map[uint64]bool)
	var out []Point
	for t := 0; t < ix.nTables; t++ {
		sig := ix.signature(t, q)
		for _, p := range ix.tables[t][sig] {
			if !seen[p.ID] {
				seen[p.ID] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// RangeSearch reports indexed points within eps of q, verified exactly
// against the candidate set. fn returning false stops the search.
func (ix *Index) RangeSearch(q []float32, eps float64, fn func(Point, float64) bool) {
	for _, p := range ix.Candidates(q) {
		var s float64
		for i := range p.Vec {
			d := float64(p.Vec[i]) - float64(q[i])
			s += d * d
		}
		if s <= eps*eps {
			if !fn(p, math.Sqrt(s)) {
				return
			}
		}
	}
}
