package vision

import (
	"hash/fnv"

	"repro/internal/codec"
	"repro/internal/exec"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// DepthModel is the monocular depth-prediction head (the paper's q6 uses
// the FCRN depth network; this stand-in uses the classical monocular cues
// FCRN learns — ground-plane position and apparent size — plus a
// pixel-dependent noise term from the convolutional backbone, so encoding
// quality perturbs its output like a real network's).
type DepthModel struct {
	dev     exec.Device
	net     *nn.Network
	Horizon int
	Focal   float64
	// NoiseFrac bounds the multiplicative error (default 0.05).
	NoiseFrac float64
	inputRes  int
}

// NewDepthModel builds the depth head matching the scene geometry it will
// be applied to (the renderer's horizon and focal constant).
func NewDepthModel(dev exec.Device, horizon int, focal float64, seed int64) *DepthModel {
	return &DepthModel{
		dev:       dev,
		net:       nn.NewBackbone(16, seed+1),
		Horizon:   horizon,
		Focal:     focal,
		NoiseFrac: 0.05,
		inputRes:  32,
	}
}

// Predict estimates the depth of the object in patch, whose bounding box
// in the source frame is (x1,y1,x2,y2).
func (m *DepthModel) Predict(patch *codec.Image, x1, y1, x2, y2 int) float64 {
	return m.PredictBatch([]*codec.Image{patch}, [][4]int{{x1, y1, x2, y2}})[0]
}

// PredictBatch estimates depths for several patches with one batched
// backbone pass.
func (m *DepthModel) PredictBatch(patches []*codec.Image, boxes [][4]int) []float64 {
	if len(patches) == 0 {
		return nil
	}
	ins := make([]*tensor.Tensor, len(patches))
	for i, p := range patches {
		in := Resize(p, m.inputRes, m.inputRes)
		ins[i] = nn.ImageToCHW(in.Pix, in.W, in.H)
	}
	feats := m.net.ForwardBatch(m.dev, ins)
	out := make([]float64, len(patches))
	for i := range patches {
		// Geometric cue: the renderer places an object's foot at
		// horizon + 3*focal/z, so z = 3*focal / (footY - horizon).
		den := float64(boxes[i][3]) - float64(m.Horizon)
		if den < 1 {
			den = 1
		}
		z := 3 * m.Focal / den
		// Pixel-dependent perturbation: fold the backbone's first
		// activations into a bounded multiplicative noise term.
		// Deterministic for identical pixels; drifts when the patch is
		// re-encoded lossily.
		h := fnv.New32a()
		for _, v := range feats[i].F32s[:4] {
			h.Write([]byte{byte(int32(v * 1000))})
		}
		frac := (float64(h.Sum32()%2048)/1024 - 1) * m.NoiseFrac // in [-NoiseFrac, +NoiseFrac)
		out[i] = z * (1 + frac)
	}
	nn.ReleaseTensors(feats) // noise term extracted; recycle activations
	nn.ReleaseTensors(ins)
	return out
}
