// Package vision supplies DeepLens's computer-vision substrate: a
// synthetic scene simulator with ground truth, a pixel-domain object
// detector (the SSD stand-in), an OCR model, a monocular depth head, and
// patch featurizers. The models operate on real decoded pixels, so storage
// and encoding decisions genuinely change their accuracy — the coupling
// the paper's Figure 2 and Table 1 measure.
package vision

import (
	"math"
	"math/rand"

	"repro/internal/codec"
)

// Class labels the detector's closed world (the paper's type system tracks
// exactly such label domains).
type Class int

// Detectable object classes.
const (
	ClassUnknown Class = iota
	ClassCar
	ClassPedestrian
	ClassPlayer
)

func (c Class) String() string {
	switch c {
	case ClassCar:
		return "car"
	case ClassPedestrian:
		return "pedestrian"
	case ClassPlayer:
		return "player"
	default:
		return "unknown"
	}
}

// ClassNames lists the label domain in stable order.
func ClassNames() []string { return []string{"car", "pedestrian", "player"} }

// classProto is the canonical body color per class; object identities
// perturb it. The detector keys on channel dominance, so families stay
// separable even after lossy encoding at reasonable quality.
func classProto(c Class) [3]uint8 {
	switch c {
	case ClassCar:
		return [3]uint8{215, 55, 55}
	case ClassPedestrian:
		return [3]uint8{55, 55, 215}
	case ClassPlayer:
		return [3]uint8{55, 195, 55}
	default:
		return [3]uint8{128, 128, 128}
	}
}

// Object is a simulated scene actor with a linear-plus-sway trajectory in
// world coordinates (x across the scene, z = distance from camera).
type Object struct {
	ID     uint64
	Class  Class
	Color  [3]uint8 // identity base color
	Stripe [3]uint8 // identity texture color
	Jersey string   // rendered on players (digits)

	// World-space extent (arbitrary units; projected by Scene.Focal).
	WorldW, WorldH float64

	// Trajectory: world x and depth z at frame t.
	X0, VX   float64
	Z0, VZ   float64
	SwayAmp  float64
	SwayFreq float64

	// Frame range during which the object is in the scene.
	Appear, Vanish int
}

// PosAt returns world x and depth z at frame t.
func (o *Object) PosAt(t int) (x, z float64) {
	ft := float64(t - o.Appear)
	x = o.X0 + o.VX*ft + o.SwayAmp*math.Sin(o.SwayFreq*ft)
	z = o.Z0 + o.VZ*ft
	if z < 1 {
		z = 1
	}
	return x, z
}

// GT is per-frame ground truth for one rendered object.
type GT struct {
	ID         uint64
	Class      Class
	X1, Y1     int
	X2, Y2     int // exclusive
	Depth      float64
	Visibility float64 // fraction of the object's pixels not occluded
	Jersey     string
}

// Scene is a camera view over a set of objects with a static background.
type Scene struct {
	W, H       int
	Horizon    int     // image y of the vanishing line
	Focal      float64 // projection constant
	Background *codec.Image
	Objects    []*Object
}

// NewTrafficBackground renders a static road scene: low-saturation asphalt
// gradient with lane markings, far from every object color family.
func NewTrafficBackground(w, h, horizon int) *codec.Image {
	img := codec.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var r, g, b int
			if y < horizon { // sky band
				r, g, b = 168, 176, 186
			} else {
				shade := 95 + (y-horizon)*40/max(1, h-horizon)
				r, g, b = shade, shade, shade+6
			}
			img.Set(x, y, 0, uint8(r))
			img.Set(x, y, 1, uint8(g))
			img.Set(x, y, 2, uint8(b))
		}
	}
	// Dashed lane markings.
	for lane := 1; lane <= 3; lane++ {
		lx := w * lane / 4
		for y := horizon; y < h; y += 6 {
			for dy := 0; dy < 3 && y+dy < h; dy++ {
				img.Set(lx, y+dy, 0, 210)
				img.Set(lx, y+dy, 1, 210)
				img.Set(lx, y+dy, 2, 200)
			}
		}
	}
	return img
}

// NewFieldBackground renders a football field: tan turf with white yard
// lines (kept away from the player-green family).
func NewFieldBackground(w, h, horizon int) *codec.Image {
	img := codec.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if y < horizon {
				img.Set(x, y, 0, 172)
				img.Set(x, y, 1, 178)
				img.Set(x, y, 2, 188)
				continue
			}
			shade := (y - horizon) * 30 / max(1, h-horizon)
			img.Set(x, y, 0, uint8(150+shade))
			img.Set(x, y, 1, uint8(125+shade))
			img.Set(x, y, 2, uint8(95+shade))
		}
	}
	for line := 0; line < 6; line++ {
		ly := horizon + (h-horizon)*line/6
		for x := 0; x < w; x++ {
			img.Set(x, ly, 0, 235)
			img.Set(x, ly, 1, 235)
			img.Set(x, ly, 2, 230)
		}
	}
	return img
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NewObject builds an object of the given class with an identity-specific
// color signature drawn from rng.
func NewObject(id uint64, class Class, rng *rand.Rand) *Object {
	proto := classProto(class)
	var col, stripe [3]uint8
	for c := 0; c < 3; c++ {
		jitter := rng.Intn(51) - 25
		v := int(proto[c]) + jitter
		if proto[c] > 128 { // dominant channel: keep dominant
			if v < 170 {
				v = 170
			}
			if v > 255 {
				v = 255
			}
		} else {
			if v < 20 {
				v = 20
			}
			if v > 110 {
				v = 110
			}
		}
		col[c] = uint8(v)
		// Stripe: shifted shade inside the same family.
		sv := v - 40
		if proto[c] > 128 {
			sv = v - 55
		}
		if sv < 10 {
			sv = 10
		}
		stripe[c] = uint8(sv)
	}
	o := &Object{ID: id, Class: class, Color: col, Stripe: stripe}
	switch class {
	case ClassCar:
		o.WorldW, o.WorldH = 4.4, 1.6
	case ClassPedestrian:
		o.WorldW, o.WorldH = 0.6, 1.75
	case ClassPlayer:
		o.WorldW, o.WorldH = 0.8, 1.9
	}
	return o
}

// project maps world (x, z) and extent to image-space bbox.
func (s *Scene) project(o *Object, t int) (x1, y1, x2, y2 int, z float64) {
	wx, wz := o.PosAt(t)
	scale := s.Focal / wz
	pw := o.WorldW * scale
	ph := o.WorldH * scale
	cx := wx * float64(s.W) / 100
	footY := float64(s.Horizon) + s.Focal*3/wz
	x1 = int(cx - pw/2)
	x2 = int(cx + pw/2)
	y2 = int(footY)
	y1 = int(footY - ph)
	return x1, y1, x2, y2, wz
}

// Render draws frame t and returns the image plus ground truth for every
// object whose bbox intersects the frame. Occlusion is resolved by depth
// (far objects drawn first); Visibility reports the unoccluded fraction.
func (s *Scene) Render(t int) (*codec.Image, []GT) {
	img := s.Background.Clone()
	type drawn struct {
		obj            *Object
		x1, y1, x2, y2 int
		z              float64
		attempted      int
		order          int
	}
	var active []*drawn
	for _, o := range s.Objects {
		if t < o.Appear || t >= o.Vanish {
			continue
		}
		x1, y1, x2, y2, z := s.project(o, t)
		if x2 <= 0 || x1 >= s.W || y2 <= 0 || y1 >= s.H || x2 <= x1 || y2 <= y1 {
			continue
		}
		active = append(active, &drawn{obj: o, x1: x1, y1: y1, x2: x2, y2: y2, z: z})
	}
	// Far-to-near painter's order.
	for i := range active {
		for j := i + 1; j < len(active); j++ {
			if active[j].z > active[i].z {
				active[i], active[j] = active[j], active[i]
			}
		}
	}
	idbuf := make([]int32, s.W*s.H)
	for i := range idbuf {
		idbuf[i] = -1
	}
	for i, d := range active {
		d.order = i
		d.attempted = s.drawObject(img, idbuf, int32(i), d.obj, d.x1, d.y1, d.x2, d.y2)
	}
	visible := make([]int, len(active))
	for _, id := range idbuf {
		if id >= 0 {
			visible[id]++
		}
	}
	gts := make([]GT, 0, len(active))
	for _, d := range active {
		vis := 0.0
		if d.attempted > 0 {
			vis = float64(visible[d.order]) / float64(d.attempted)
		}
		gts = append(gts, GT{
			ID: d.obj.ID, Class: d.obj.Class,
			X1: clampInt(d.x1, 0, s.W), Y1: clampInt(d.y1, 0, s.H),
			X2: clampInt(d.x2, 0, s.W), Y2: clampInt(d.y2, 0, s.H),
			Depth: d.z, Visibility: vis, Jersey: d.obj.Jersey,
		})
	}
	return img, gts
}

// GroundTruth computes per-object truth for frame t without rendering
// pixels. Visibility is approximated geometrically: the fraction of the
// object's bbox not covered by the union of nearer objects' bboxes
// (sampled on a grid). Cheaper than Render when only labels are needed.
func (s *Scene) GroundTruth(t int) []GT {
	type act struct {
		o              *Object
		x1, y1, x2, y2 int
		z              float64
	}
	var active []act
	for _, o := range s.Objects {
		if t < o.Appear || t >= o.Vanish {
			continue
		}
		x1, y1, x2, y2, z := s.project(o, t)
		if x2 <= 0 || x1 >= s.W || y2 <= 0 || y1 >= s.H || x2 <= x1 || y2 <= y1 {
			continue
		}
		active = append(active, act{o, x1, y1, x2, y2, z})
	}
	gts := make([]GT, 0, len(active))
	for i, a := range active {
		covered, total := 0, 0
		for y := a.y1; y < a.y2; y++ {
			if y < 0 || y >= s.H {
				continue
			}
			for x := a.x1; x < a.x2; x++ {
				if x < 0 || x >= s.W {
					continue
				}
				total++
				for j, b := range active {
					if j == i || b.z >= a.z {
						continue
					}
					if x >= b.x1 && x < b.x2 && y >= b.y1 && y < b.y2 {
						covered++
						break
					}
				}
			}
		}
		vis := 0.0
		if total > 0 {
			vis = 1 - float64(covered)/float64(total)
		}
		gts = append(gts, GT{
			ID: a.o.ID, Class: a.o.Class,
			X1: clampInt(a.x1, 0, s.W), Y1: clampInt(a.y1, 0, s.H),
			X2: clampInt(a.x2, 0, s.W), Y2: clampInt(a.y2, 0, s.H),
			Depth: a.z, Visibility: vis, Jersey: a.o.Jersey,
		})
	}
	return gts
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// drawObject paints o's body into img, stamping idbuf, and returns the
// number of in-frame pixels attempted.
func (s *Scene) drawObject(img *codec.Image, idbuf []int32, id int32, o *Object, x1, y1, x2, y2 int) int {
	w := x2 - x1
	h := y2 - y1
	attempted := 0
	put := func(x, y int, c [3]uint8) {
		if x < 0 || x >= s.W || y < 0 || y >= s.H {
			return
		}
		attempted++
		idbuf[y*s.W+x] = id
		img.Set(x, y, 0, c[0])
		img.Set(x, y, 1, c[1])
		img.Set(x, y, 2, c[2])
	}
	switch o.Class {
	case ClassCar:
		// Body with cabin notch and dark wheels.
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				// Cabin: upper quarter only in the middle half.
				if y < h/4 && (x < w/4 || x >= w*3/4) {
					continue
				}
				col := o.Color
				if y%4 == 3 { // identity texture stripe
					col = o.Stripe
				}
				put(x1+x, y1+y, col)
			}
		}
		wheel := [3]uint8{25, 25, 25}
		wr := max(1, h/5)
		for dy := 0; dy < wr; dy++ {
			for dx := 0; dx < wr*2; dx++ {
				put(x1+w/6+dx, y2-1-dy, wheel)
				put(x1+w*5/6-2*wr+dx, y2-1-dy, wheel)
			}
		}
	case ClassPedestrian, ClassPlayer:
		// Head (top 1/5, skin tone), torso (identity color, striped), legs.
		head := [3]uint8{205, 170, 140}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				switch {
				case y < h/5: // head: centered, narrower
					if x >= w/4 && x < w*3/4 {
						put(x1+x, y1+y, head)
					}
				case y < h*3/5: // torso
					col := o.Color
					if y%3 == 2 {
						col = o.Stripe
					}
					put(x1+x, y1+y, col)
				default: // legs: two columns
					if x < w/3 || x >= w*2/3 {
						col := o.Stripe
						put(x1+x, y1+y, col)
					}
				}
			}
		}
		// Jersey number on players, white on the torso.
		if o.Class == ClassPlayer && o.Jersey != "" {
			scale := w / (GlyphW*len(o.Jersey) + 2)
			if scale >= 1 {
				tw := GlyphW * scale * len(o.Jersey)
				tx := x1 + (w-tw)/2
				ty := y1 + h/5 + 1
				white := [3]uint8{250, 250, 250}
				for ci := 0; ci < len(o.Jersey); ci++ {
					drawGlyphFn(o.Jersey[ci], tx+ci*GlyphW*scale, ty, scale, white, put)
				}
			}
		}
	default:
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				put(x1+x, y1+y, o.Color)
			}
		}
	}
	return attempted
}

// drawGlyphFn rasterizes glyph c at (x, y) with integer scale via put.
func drawGlyphFn(c byte, x, y, scale int, col [3]uint8, put func(int, int, [3]uint8)) {
	for gy := 0; gy < GlyphH; gy++ {
		for gx := 0; gx < GlyphW; gx++ {
			if !glyphPixel(c, gx, gy) {
				continue
			}
			for sy := 0; sy < scale; sy++ {
				for sx := 0; sx < scale; sx++ {
					put(x+gx*scale+sx, y+gy*scale+sy, col)
				}
			}
		}
	}
}

// DrawString renders s at (x, y) with the given scale and color directly
// into img (used by the PC document generator).
func DrawString(img *codec.Image, text string, x, y, scale int, col [3]uint8) {
	put := func(px, py int, c [3]uint8) {
		img.Set(px, py, 0, c[0])
		img.Set(px, py, 1, c[1])
		img.Set(px, py, 2, c[2])
	}
	for i := 0; i < len(text); i++ {
		drawGlyphFn(text[i], x+i*(GlyphW+1)*scale, y, scale, col, put)
	}
}
