package vision

// 5x7 bitmap font covering digits and uppercase letters. The scene
// simulator renders jersey numbers and document text with these glyphs,
// and the OCR model template-matches against the same table — recognition
// is genuinely pixel-domain, so lossy encoding degrades it.

// glyphs maps a character to 7 rows of 5 bits (MSB = leftmost column).
var glyphs = map[byte][7]byte{
	'0': {0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110},
	'1': {0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110},
	'2': {0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111},
	'3': {0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110},
	'4': {0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010},
	'5': {0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110},
	'6': {0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110},
	'7': {0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000},
	'8': {0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110},
	'9': {0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100},
	'A': {0b01110, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001},
	'B': {0b11110, 0b10001, 0b10001, 0b11110, 0b10001, 0b10001, 0b11110},
	'C': {0b01110, 0b10001, 0b10000, 0b10000, 0b10000, 0b10001, 0b01110},
	'D': {0b11100, 0b10010, 0b10001, 0b10001, 0b10001, 0b10010, 0b11100},
	'E': {0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b11111},
	'F': {0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b10000},
	'G': {0b01110, 0b10001, 0b10000, 0b10111, 0b10001, 0b10001, 0b01111},
	'H': {0b10001, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001},
	'I': {0b01110, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110},
	'J': {0b00111, 0b00010, 0b00010, 0b00010, 0b00010, 0b10010, 0b01100},
	'K': {0b10001, 0b10010, 0b10100, 0b11000, 0b10100, 0b10010, 0b10001},
	'L': {0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b11111},
	'M': {0b10001, 0b11011, 0b10101, 0b10101, 0b10001, 0b10001, 0b10001},
	'N': {0b10001, 0b10001, 0b11001, 0b10101, 0b10011, 0b10001, 0b10001},
	'O': {0b01110, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110},
	'P': {0b11110, 0b10001, 0b10001, 0b11110, 0b10000, 0b10000, 0b10000},
	'Q': {0b01110, 0b10001, 0b10001, 0b10001, 0b10101, 0b10010, 0b01101},
	'R': {0b11110, 0b10001, 0b10001, 0b11110, 0b10100, 0b10010, 0b10001},
	'S': {0b01111, 0b10000, 0b10000, 0b01110, 0b00001, 0b00001, 0b11110},
	'T': {0b11111, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100},
	'U': {0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110},
	'V': {0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01010, 0b00100},
	'W': {0b10001, 0b10001, 0b10001, 0b10101, 0b10101, 0b10101, 0b01010},
	'X': {0b10001, 0b10001, 0b01010, 0b00100, 0b01010, 0b10001, 0b10001},
	'Y': {0b10001, 0b10001, 0b01010, 0b00100, 0b00100, 0b00100, 0b00100},
	'Z': {0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b10000, 0b11111},
}

// GlyphW and GlyphH are the font cell dimensions.
const (
	GlyphW = 5
	GlyphH = 7
)

// GlyphSet returns the characters the font (and hence the OCR model) knows.
func GlyphSet() []byte {
	out := make([]byte, 0, len(glyphs))
	for c := range glyphs {
		out = append(out, c)
	}
	return out
}

// glyphPixel reports whether the font cell for c is set at (x, y).
func glyphPixel(c byte, x, y int) bool {
	g, ok := glyphs[c]
	if !ok || x < 0 || x >= GlyphW || y < 0 || y >= GlyphH {
		return false
	}
	return g[y]&(1<<uint(GlyphW-1-x)) != 0
}
