package vision

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"repro/internal/codec"
)

// This file makes the inference UDFs memoizable. The paper's central
// systems argument is that ML inference dominates visual analytics cost
// and its outputs should be materialized and reused rather than
// recomputed per query. The wrappers here key each model's output on the
// exact input pixels plus a model namespace, storing through a pluggable
// cache so the serving layer can bound memory and count hits.

// MemoCache is the store memoized UDFs read and write through. The
// serving layer provides an LRU+TTL implementation with byte accounting;
// tests can use a plain map. Implementations must be safe for concurrent
// use. Cached values are shared across callers and must not be mutated.
type MemoCache interface {
	// Get returns the value cached under key, if present.
	Get(key string) (any, bool)
	// Put stores val under key; bytes is the caller's size estimate for
	// the cache's memory accounting.
	Put(key string, val any, bytes int64)
}

// ImageKey fingerprints an image's exact pixel contents (FNV-1a over
// dimensions and pixels). Two frames with identical pixels — the same
// frame decoded twice, or re-rendered deterministically — share a key, so
// inference over them is computed once.
func ImageKey(img *codec.Image) string {
	h := fnv.New64a()
	var dims [16]byte
	binary.LittleEndian.PutUint64(dims[:8], uint64(img.W))
	binary.LittleEndian.PutUint64(dims[8:], uint64(img.H))
	h.Write(dims[:])
	h.Write(img.Pix)
	return fmt.Sprintf("%016x", h.Sum64())
}

// MemoDetector memoizes Detector.Detect per input image. The namespace
// distinguishes models (weights seed, thresholds); the wrapped detector
// itself is not shared-state-safe across goroutines only if its device
// is, so serving workers each wrap their own detector around one shared
// cache.
type MemoDetector struct {
	det   *Detector
	cache MemoCache
	ns    string
}

// NewMemoDetector wraps det with memoization under the given model
// namespace.
func NewMemoDetector(det *Detector, ns string, cache MemoCache) *MemoDetector {
	return &MemoDetector{det: det, cache: cache, ns: ns}
}

// Detect returns the cached proposals for img, running the model on miss.
// The returned slice is shared with the cache: callers must not mutate it.
func (m *MemoDetector) Detect(img *codec.Image) []Detection {
	key := "udf:detect:" + m.ns + ":" + ImageKey(img)
	if v, ok := m.cache.Get(key); ok {
		return v.([]Detection)
	}
	dets := m.det.Detect(img)
	m.cache.Put(key, dets, int64(len(dets))*48+64)
	return dets
}

// MemoEmbedder memoizes Embedder.Embed per input image.
type MemoEmbedder struct {
	emb   *Embedder
	cache MemoCache
	ns    string
}

// NewMemoEmbedder wraps emb with memoization under the given model
// namespace.
func NewMemoEmbedder(emb *Embedder, ns string, cache MemoCache) *MemoEmbedder {
	return &MemoEmbedder{emb: emb, cache: cache, ns: ns}
}

// Dim returns the embedding dimensionality.
func (m *MemoEmbedder) Dim() int { return m.emb.Dim() }

// Embed returns the cached embedding for img, running the model on miss.
// The returned vector is shared with the cache: callers must not mutate it.
func (m *MemoEmbedder) Embed(img *codec.Image) []float32 {
	key := "udf:embed:" + m.ns + ":" + ImageKey(img)
	if v, ok := m.cache.Get(key); ok {
		return v.([]float32)
	}
	vec := m.emb.Embed(img)
	m.cache.Put(key, vec, int64(len(vec))*4+64)
	return vec
}

// MemoOCR memoizes OCR.Recognize per input image.
type MemoOCR struct {
	ocr   *OCR
	cache MemoCache
	ns    string
}

// NewMemoOCR wraps ocr with memoization under the given model namespace.
func NewMemoOCR(ocr *OCR, ns string, cache MemoCache) *MemoOCR {
	return &MemoOCR{ocr: ocr, cache: cache, ns: ns}
}

// Recognize returns the cached words for img, running OCR on miss. The
// returned slice is shared with the cache: callers must not mutate it.
func (m *MemoOCR) Recognize(img *codec.Image) []OCRWord {
	key := "udf:ocr:" + m.ns + ":" + ImageKey(img)
	if v, ok := m.cache.Get(key); ok {
		return v.([]OCRWord)
	}
	words := m.ocr.Recognize(img)
	size := int64(64)
	for _, w := range words {
		size += int64(len(w.Text)) + 48
	}
	m.cache.Put(key, words, size)
	return words
}
