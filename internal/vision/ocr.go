package vision

import (
	"sort"

	"repro/internal/codec"
)

// OCRWord is one recognized token with its bounding box and mean per-glyph
// match score in [0,1].
type OCRWord struct {
	Text           string
	X1, Y1, X2, Y2 int
	Score          float64
}

// OCR is the text-recognition model: ink segmentation (dark-on-light or
// bright-on-dark) followed by per-component template matching against the
// same 5x7 font the simulator renders with. Like the detector, it reads
// decoded pixels, so compression artifacts cost it accuracy.
type OCR struct {
	// MinScore is the per-glyph acceptance threshold.
	MinScore float64
	// Bright selects bright-ink segmentation (jersey numbers) instead of
	// dark-ink (documents).
	Bright bool
}

// NewDocumentOCR recognizes dark text on light backgrounds.
func NewDocumentOCR() *OCR { return &OCR{MinScore: 0.65} }

// NewJerseyOCR recognizes bright digits on colored torsos.
func NewJerseyOCR() *OCR { return &OCR{MinScore: 0.6, Bright: true} }

func luminance(r, g, b int) int { return (r*299 + g*587 + b*114) / 1000 }

// ink reports whether the pixel at (x,y) is ink under the model's polarity.
func (o *OCR) ink(img *codec.Image, x, y int) bool {
	l := luminance(int(img.At(x, y, 0)), int(img.At(x, y, 1)), int(img.At(x, y, 2)))
	if o.Bright {
		return l >= 190
	}
	return l < 100
}

type glyphBox struct {
	x1, y1, x2, y2 int
	pixels         []int // linear indexes of ink
}

// segments extracts 8-connected ink components.
func (o *OCR) segments(img *codec.Image) []glyphBox {
	w, h := img.W, img.H
	ink := make([]bool, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			ink[y*w+x] = o.ink(img, x, y)
		}
	}
	visited := make([]bool, w*h)
	var out []glyphBox
	var stack []int
	for s := 0; s < w*h; s++ {
		if visited[s] || !ink[s] {
			continue
		}
		stack = stack[:0]
		stack = append(stack, s)
		visited[s] = true
		gb := glyphBox{x1: w, y1: h, x2: -1, y2: -1}
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			gb.pixels = append(gb.pixels, p)
			px, py := p%w, p/w
			if px < gb.x1 {
				gb.x1 = px
			}
			if px > gb.x2 {
				gb.x2 = px
			}
			if py < gb.y1 {
				gb.y1 = py
			}
			if py > gb.y2 {
				gb.y2 = py
			}
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny := px+dx, py+dy
					if nx < 0 || nx >= w || ny < 0 || ny >= h {
						continue
					}
					np := ny*w + nx
					if !visited[np] && ink[np] {
						visited[np] = true
						stack = append(stack, np)
					}
				}
			}
		}
		gb.x2++
		gb.y2++
		if len(gb.pixels) >= 4 && gb.y2-gb.y1 >= 4 {
			out = append(out, gb)
		}
	}
	return out
}

// glyphTight caches each glyph's tight ink bounds within the 5x7 cell, so
// templates align with the tight bounding boxes segmentation produces
// (narrow glyphs like '1' occupy only part of the cell).
var glyphTight = func() map[byte][4]int {
	out := make(map[byte][4]int, len(glyphs))
	for c := range glyphs {
		x1, y1, x2, y2 := GlyphW, GlyphH, 0, 0
		for y := 0; y < GlyphH; y++ {
			for x := 0; x < GlyphW; x++ {
				if glyphPixel(c, x, y) {
					if x < x1 {
						x1 = x
					}
					if x+1 > x2 {
						x2 = x + 1
					}
					if y < y1 {
						y1 = y
					}
					if y+1 > y2 {
						y2 = y + 1
					}
				}
			}
		}
		out[c] = [4]int{x1, y1, x2, y2}
	}
	return out
}()

// matchGlyph scores component gb against character c by mapping c's tight
// template bounds onto the component's tight bbox; returns cell agreement
// in [0,1].
func matchGlyph(gb glyphBox, c byte, w int) float64 {
	bw := gb.x2 - gb.x1
	bh := gb.y2 - gb.y1
	tight := glyphTight[c]
	tx1, ty1, tx2, ty2 := tight[0], tight[1], tight[2], tight[3]
	tw, th := tx2-tx1, ty2-ty1
	if tw <= 0 || th <= 0 {
		return 0
	}
	inkSet := make(map[int]bool, len(gb.pixels))
	for _, p := range gb.pixels {
		inkSet[p] = true
	}
	agree, total := 0, 0
	for gy := ty1; gy < ty2; gy++ {
		for gx := tx1; gx < tx2; gx++ {
			want := glyphPixel(c, gx, gy)
			// Map tight template cell to component box region.
			x1 := gb.x1 + (gx-tx1)*bw/tw
			x2 := gb.x1 + (gx-tx1+1)*bw/tw
			y1 := gb.y1 + (gy-ty1)*bh/th
			y2 := gb.y1 + (gy-ty1+1)*bh/th
			if x2 <= x1 {
				x2 = x1 + 1
			}
			if y2 <= y1 {
				y2 = y1 + 1
			}
			// Cell is "on" when most of its pixels are ink.
			on := 0
			n := 0
			for y := y1; y < y2; y++ {
				for x := x1; x < x2; x++ {
					n++
					if inkSet[y*w+x] {
						on++
					}
				}
			}
			got := on*2 >= n
			total++
			if got == want {
				agree++
			}
		}
	}
	return float64(agree) / float64(total)
}

// Recognize finds text in img: components are classified independently,
// then grouped into words by row and horizontal adjacency.
func (o *OCR) Recognize(img *codec.Image) []OCRWord {
	segs := o.segments(img)
	var chars []ocrChar
	for _, gb := range segs {
		bestC := byte(0)
		bestS := 0.0
		for _, c := range GlyphSet() {
			if s := matchGlyph(gb, c, img.W); s > bestS {
				bestS, bestC = s, c
			}
		}
		if bestS >= o.MinScore {
			chars = append(chars, ocrChar{c: bestC, score: bestS, gb: gb})
		}
	}
	if len(chars) == 0 {
		return nil
	}
	// Group into rows by vertical overlap, then sort by x and split words
	// on gaps wider than one glyph width.
	sort.Slice(chars, func(i, j int) bool {
		if chars[i].gb.y1 != chars[j].gb.y1 {
			return chars[i].gb.y1 < chars[j].gb.y1
		}
		return chars[i].gb.x1 < chars[j].gb.x1
	})
	var rows [][]ocrChar
	for _, c := range chars {
		placed := false
		for ri := range rows {
			r0 := rows[ri][0]
			if overlap1D(c.gb.y1, c.gb.y2, r0.gb.y1, r0.gb.y2) > 0.5 {
				rows[ri] = append(rows[ri], c)
				placed = true
				break
			}
		}
		if !placed {
			rows = append(rows, []ocrChar{c})
		}
	}
	var words []OCRWord
	for _, row := range rows {
		sort.Slice(row, func(i, j int) bool { return row[i].gb.x1 < row[j].gb.x1 })
		start := 0
		for i := 1; i <= len(row); i++ {
			glyphW := row[i-1].gb.x2 - row[i-1].gb.x1
			if i == len(row) || row[i].gb.x1-row[i-1].gb.x2 > glyphW+2 {
				words = append(words, assembleWord(row[start:i]))
				start = i
			}
		}
	}
	return words
}

func overlap1D(a1, a2, b1, b2 int) float64 {
	lo, hi := max(a1, b1), min(a2, b2)
	if hi <= lo {
		return 0
	}
	span := min(a2-a1, b2-b1)
	if span <= 0 {
		return 0
	}
	return float64(hi-lo) / float64(span)
}

// ocrChar is one classified ink component.
type ocrChar struct {
	c     byte
	score float64
	gb    glyphBox
}

func assembleWord(row []ocrChar) OCRWord {
	w := OCRWord{X1: row[0].gb.x1, Y1: row[0].gb.y1, X2: row[0].gb.x2, Y2: row[0].gb.y2}
	buf := make([]byte, 0, len(row))
	var s float64
	for _, c := range row {
		buf = append(buf, c.c)
		s += c.score
		if c.gb.x2 > w.X2 {
			w.X2 = c.gb.x2
		}
		if c.gb.y1 < w.Y1 {
			w.Y1 = c.gb.y1
		}
		if c.gb.y2 > w.Y2 {
			w.Y2 = c.gb.y2
		}
	}
	w.Text = string(buf)
	w.Score = s / float64(len(row))
	return w
}
