package vision

import (
	"math/rand"

	"repro/internal/codec"
	"repro/internal/exec"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Detection is one object proposal from the detector: the SSD-sim analog
// of a bounding box + label + confidence.
type Detection struct {
	Class          Class
	Score          float64
	X1, Y1, X2, Y2 int
}

// Detector is DeepLens's object-detection model. It combines a fixed
// convolutional backbone (real GEMM compute on the execution device — the
// part of ETL the paper reports as inference-dominated) with a pixel-domain
// head: class-keyed color segmentation and connected components. Because
// the head reads decoded pixels, lossy storage genuinely perturbs its
// output.
type Detector struct {
	dev     exec.Device
	net     *nn.Network
	tile    int
	minArea int
	// dominance thresholds for pixel classification
	minDominant int
	minMargin   int
}

// NewDetector builds the detector on the given device. seed fixes the
// backbone weights.
func NewDetector(dev exec.Device, seed int64) *Detector {
	return &Detector{
		dev:         dev,
		net:         nn.NewBackbone(32, seed),
		tile:        64,
		minArea:     10,
		minDominant: 110,
		minMargin:   40,
	}
}

// classifyPixel assigns a pixel to a class family by channel dominance, or
// ClassUnknown.
func (d *Detector) classifyPixel(r, g, b int) Class {
	switch {
	case r >= d.minDominant && r-g >= d.minMargin && r-b >= d.minMargin:
		return ClassCar
	case b >= d.minDominant && b-r >= d.minMargin && b-g >= d.minMargin:
		return ClassPedestrian
	case g >= d.minDominant && g-r >= d.minMargin && g-b >= d.minMargin:
		return ClassPlayer
	default:
		return ClassUnknown
	}
}

// Detect runs the model over a frame and returns object proposals.
func (d *Detector) Detect(img *codec.Image) []Detection {
	d.burnBackbone(img)
	w, h := img.W, img.H
	labels := make([]uint8, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			base := (y*w + x) * 3
			c := d.classifyPixel(int(img.Pix[base]), int(img.Pix[base+1]), int(img.Pix[base+2]))
			labels[y*w+x] = uint8(c)
		}
	}
	return d.components(labels, w, h)
}

// burnBackbone runs the convolutional feature extractor over the frame's
// tiles as one batched forward pass (one GEMM per layer, not per tile);
// its activations gate nothing in the head but represent the inference
// FLOPs the paper's ETL numbers are dominated by, and batching is what
// lets the accelerator backend amortize its launch overhead (Figure 8).
func (d *Detector) burnBackbone(img *codec.Image) {
	var tiles []*tensor.Tensor
	for ty := 0; ty < img.H; ty += d.tile {
		for tx := 0; tx < img.W; tx += d.tile {
			crop := img.Crop(tx, ty, tx+d.tile, ty+d.tile)
			pad := Resize(crop, d.tile, d.tile)
			tiles = append(tiles, nn.ImageToCHW(pad.Pix, pad.W, pad.H))
		}
	}
	feats := d.net.ForwardBatch(d.dev, tiles)
	// The activations gate nothing downstream: recycle them and the tile
	// tensors so per-frame detection is allocation-steady under load.
	nn.ReleaseTensors(feats)
	nn.ReleaseTensors(tiles)
}

// components extracts per-class connected components (4-connectivity) and
// converts them to detections.
func (d *Detector) components(labels []uint8, w, h int) []Detection {
	visited := make([]bool, w*h)
	var out []Detection
	var stack []int
	for start := 0; start < w*h; start++ {
		if visited[start] || labels[start] == uint8(ClassUnknown) {
			continue
		}
		cls := labels[start]
		// Flood fill.
		stack = stack[:0]
		stack = append(stack, start)
		visited[start] = true
		minX, minY, maxX, maxY := w, h, -1, -1
		area := 0
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			px, py := p%w, p/w
			area++
			if px < minX {
				minX = px
			}
			if px > maxX {
				maxX = px
			}
			if py < minY {
				minY = py
			}
			if py > maxY {
				maxY = py
			}
			// 4-neighbours
			if px > 0 && !visited[p-1] && labels[p-1] == cls {
				visited[p-1] = true
				stack = append(stack, p-1)
			}
			if px < w-1 && !visited[p+1] && labels[p+1] == cls {
				visited[p+1] = true
				stack = append(stack, p+1)
			}
			if py > 0 && !visited[p-w] && labels[p-w] == cls {
				visited[p-w] = true
				stack = append(stack, p-w)
			}
			if py < h-1 && !visited[p+w] && labels[p+w] == cls {
				visited[p+w] = true
				stack = append(stack, p+w)
			}
		}
		if area < d.minArea {
			continue
		}
		bw := maxX - minX + 1
		bh := maxY - minY + 1
		fill := float64(area) / float64(bw*bh)
		if fill < 0.2 { // stripes of background misclassified, reject
			continue
		}
		det := Detection{
			Class: Class(cls),
			X1:    minX, Y1: minY, X2: maxX + 1, Y2: maxY + 1,
		}
		// People render a skin-tone head above the colored torso: extend
		// the box upward to approximate the full-body ground truth.
		if det.Class == ClassPedestrian || det.Class == ClassPlayer {
			det.Y1 -= bh / 3
			if det.Y1 < 0 {
				det.Y1 = 0
			}
		}
		// Confidence grows with support and compactness.
		score := fill * float64(area) / (float64(area) + 25)
		if score > 1 {
			score = 1
		}
		det.Score = score
		out = append(out, det)
	}
	return out
}

// Resize nearest-neighbour scales img to w x h (the fixed-resolution input
// contract of the neural models; the paper's type system tracks exactly
// this constraint).
func Resize(img *codec.Image, w, h int) *codec.Image {
	if img.W == w && img.H == h {
		return img
	}
	out := codec.NewImage(w, h)
	for y := 0; y < h; y++ {
		sy := y * img.H / h
		for x := 0; x < w; x++ {
			sx := x * img.W / w
			for c := 0; c < 3; c++ {
				out.Set(x, y, c, img.At(sx, sy, c))
			}
		}
	}
	return out
}

// IoU computes intersection-over-union of two boxes (exclusive max edges).
func IoU(ax1, ay1, ax2, ay2, bx1, by1, bx2, by2 int) float64 {
	ix1, iy1 := max(ax1, bx1), max(ay1, by1)
	ix2, iy2 := min(ax2, bx2), min(ay2, by2)
	if ix2 <= ix1 || iy2 <= iy1 {
		return 0
	}
	inter := float64((ix2 - ix1) * (iy2 - iy1))
	areaA := float64((ax2 - ax1) * (ay2 - ay1))
	areaB := float64((bx2 - bx1) * (by2 - by1))
	return inter / (areaA + areaB - inter)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RandomJersey draws a 1-2 digit jersey number.
func RandomJersey(rng *rand.Rand) string {
	n := rng.Intn(90) + 10
	if rng.Intn(3) == 0 {
		n = rng.Intn(10)
	}
	digits := "0123456789"
	if n < 10 {
		return string(digits[n])
	}
	return string([]byte{digits[n/10], digits[n%10]})
}
