package vision

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/codec"
	"repro/internal/exec"
)

// testScene builds a small traffic scene with nCars cars and nPeds
// pedestrians on deterministic trajectories.
func testScene(w, h, nCars, nPeds int, seed int64) *Scene {
	rng := rand.New(rand.NewSource(seed))
	horizon := h / 4
	sc := &Scene{W: w, H: h, Horizon: horizon, Focal: float64(h) / 3,
		Background: NewTrafficBackground(w, h, horizon)}
	id := uint64(1)
	for i := 0; i < nCars; i++ {
		o := NewObject(id, ClassCar, rng)
		o.X0 = rng.Float64() * 80
		o.VX = 0.3 + rng.Float64()*0.5
		o.Z0 = 4 + rng.Float64()*6
		o.Appear, o.Vanish = 0, 1<<30
		sc.Objects = append(sc.Objects, o)
		id++
	}
	for i := 0; i < nPeds; i++ {
		o := NewObject(id, ClassPedestrian, rng)
		o.X0 = 10 + rng.Float64()*70
		o.VX = 0.1 + rng.Float64()*0.2
		o.Z0 = 3 + rng.Float64()*4
		o.SwayAmp = 0.5
		o.SwayFreq = 0.2
		o.Appear, o.Vanish = 0, 1<<30
		sc.Objects = append(sc.Objects, o)
		id++
	}
	return sc
}

func TestSceneRenderGroundTruth(t *testing.T) {
	sc := testScene(192, 108, 3, 3, 1)
	img, gts := sc.Render(0)
	if err := img.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(gts) == 0 {
		t.Fatal("no ground truth objects in frame")
	}
	for _, gt := range gts {
		if gt.X2 <= gt.X1 || gt.Y2 <= gt.Y1 {
			t.Fatalf("degenerate GT box %+v", gt)
		}
		if gt.Visibility < 0 || gt.Visibility > 1 {
			t.Fatalf("visibility %f out of range", gt.Visibility)
		}
		if gt.Depth <= 0 {
			t.Fatalf("non-positive depth %f", gt.Depth)
		}
	}
}

func TestRenderDeterministic(t *testing.T) {
	a, _ := testScene(96, 64, 2, 2, 5).Render(3)
	b, _ := testScene(96, 64, 2, 2, 5).Render(3)
	if codec.MSE(a, b) != 0 {
		t.Fatal("same scene+frame rendered differently")
	}
}

// matchRate computes detection recall and precision against ground truth
// with IoU >= 0.3 and matching class, counting GT with visibility >= minVis.
func matchRate(dets []Detection, gts []GT, minVis float64) (recall, precision float64) {
	gtUsed := make([]bool, len(gts))
	tp := 0
	for _, d := range dets {
		for gi, gt := range gts {
			if gtUsed[gi] || gt.Class != d.Class || gt.Visibility < minVis {
				continue
			}
			if IoU(d.X1, d.Y1, d.X2, d.Y2, gt.X1, gt.Y1, gt.X2, gt.Y2) >= 0.3 {
				gtUsed[gi] = true
				tp++
				break
			}
		}
	}
	nGT := 0
	for _, gt := range gts {
		if gt.Visibility >= minVis {
			nGT++
		}
	}
	if nGT == 0 {
		recall = 1
	} else {
		recall = float64(tp) / float64(nGT)
	}
	if len(dets) == 0 {
		precision = 1
	} else {
		precision = float64(tp) / float64(len(dets))
	}
	return recall, precision
}

func TestDetectorOnCleanFrames(t *testing.T) {
	sc := testScene(192, 108, 4, 4, 2)
	det := NewDetector(exec.New(exec.CPU), 42)
	var sumR, sumP float64
	const frames = 5
	for f := 0; f < frames; f++ {
		img, gts := sc.Render(f * 10)
		dets := det.Detect(img)
		r, p := matchRate(dets, gts, 0.6)
		sumR += r
		sumP += p
	}
	if sumR/frames < 0.8 {
		t.Fatalf("clean-frame recall %.2f below 0.8", sumR/frames)
	}
	if sumP/frames < 0.8 {
		t.Fatalf("clean-frame precision %.2f below 0.8", sumP/frames)
	}
}

func TestDetectorDegradesWithLossyEncoding(t *testing.T) {
	sc := testScene(192, 108, 4, 5, 3)
	det := NewDetector(exec.New(exec.CPU), 42)
	qualities := []codec.Quality{codec.QualityHigh, codec.QualityLow}
	recalls := make([]float64, len(qualities))
	const frames = 4
	for qi, q := range qualities {
		var sum float64
		for f := 0; f < frames; f++ {
			img, gts := sc.Render(f * 7)
			enc, err := codec.EncodeDLJ(img, q)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := codec.DecodeDLJ(enc)
			if err != nil {
				t.Fatal(err)
			}
			r, _ := matchRate(det.Detect(dec), gts, 0.6)
			sum += r
		}
		recalls[qi] = sum / frames
	}
	if recalls[0] < 0.7 {
		t.Fatalf("high-quality recall %.2f below 0.7", recalls[0])
	}
	if recalls[1] > recalls[0]+1e-9 {
		t.Fatalf("low quality (%.2f) not worse than high (%.2f)", recalls[1], recalls[0])
	}
}

func TestOCRDocumentRoundTrip(t *testing.T) {
	img := codec.NewImage(200, 80)
	for i := range img.Pix {
		img.Pix[i] = 245 // light page
	}
	DrawString(img, "HELLO", 10, 10, 2, [3]uint8{20, 20, 20})
	DrawString(img, "WORLD42", 10, 40, 2, [3]uint8{20, 20, 20})
	words := NewDocumentOCR().Recognize(img)
	got := map[string]bool{}
	for _, w := range words {
		got[w.Text] = true
	}
	if !got["HELLO"] || !got["WORLD42"] {
		t.Fatalf("OCR missed words; got %v", words)
	}
}

func TestOCRScales(t *testing.T) {
	for _, scale := range []int{1, 2, 3} {
		img := codec.NewImage(150, 40)
		for i := range img.Pix {
			img.Pix[i] = 250
		}
		DrawString(img, "TEST9", 5, 5, scale, [3]uint8{10, 10, 10})
		words := NewDocumentOCR().Recognize(img)
		found := false
		for _, w := range words {
			if w.Text == "TEST9" {
				found = true
			}
		}
		if !found {
			t.Fatalf("scale %d: OCR got %v, want TEST9", scale, words)
		}
	}
}

func TestJerseyOCROnRenderedPlayer(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	horizon := 20
	sc := &Scene{W: 160, H: 120, Horizon: horizon, Focal: 60,
		Background: NewFieldBackground(160, 120, horizon)}
	o := NewObject(1, ClassPlayer, rng)
	o.Jersey = "7"
	o.X0, o.Z0 = 50, 2.0 // close to camera: big and legible
	o.Appear, o.Vanish = 0, 100
	sc.Objects = append(sc.Objects, o)
	img, gts := sc.Render(0)
	if len(gts) != 1 {
		t.Fatalf("gts = %d", len(gts))
	}
	patch := img.Crop(gts[0].X1, gts[0].Y1, gts[0].X2, gts[0].Y2)
	words := NewJerseyOCR().Recognize(patch)
	found := false
	for _, w := range words {
		if w.Text == "7" {
			found = true
		}
	}
	if !found {
		t.Fatalf("jersey OCR got %v, want 7 (patch %dx%d)", words, patch.W, patch.H)
	}
}

func TestDepthModelAccuracy(t *testing.T) {
	sc := testScene(192, 108, 0, 6, 4)
	dm := NewDepthModel(exec.New(exec.CPU), sc.Horizon, sc.Focal, 42)
	img, gts := sc.Render(0)
	for _, gt := range gts {
		if gt.Visibility < 0.9 {
			continue
		}
		patch := img.Crop(gt.X1, gt.Y1, gt.X2, gt.Y2)
		pred := dm.Predict(patch, gt.X1, gt.Y1, gt.X2, gt.Y2)
		relErr := math.Abs(pred-gt.Depth) / gt.Depth
		if relErr > 0.25 {
			t.Fatalf("depth rel error %.2f for GT depth %.2f (pred %.2f)", relErr, gt.Depth, pred)
		}
	}
}

func TestDepthOrderingMostlyPreserved(t *testing.T) {
	sc := testScene(192, 108, 0, 8, 6)
	dm := NewDepthModel(exec.New(exec.CPU), sc.Horizon, sc.Focal, 42)
	img, gts := sc.Render(0)
	type dp struct{ gt, pred float64 }
	var ds []dp
	for _, gt := range gts {
		if gt.Visibility < 0.9 {
			continue
		}
		patch := img.Crop(gt.X1, gt.Y1, gt.X2, gt.Y2)
		ds = append(ds, dp{gt.Depth, dm.Predict(patch, gt.X1, gt.Y1, gt.X2, gt.Y2)})
	}
	if len(ds) < 3 {
		t.Skip("not enough visible objects")
	}
	agree, total := 0, 0
	for i := range ds {
		for j := i + 1; j < len(ds); j++ {
			if math.Abs(ds[i].gt-ds[j].gt) < 0.5 {
				continue // too close to call
			}
			total++
			if (ds[i].gt < ds[j].gt) == (ds[i].pred < ds[j].pred) {
				agree++
			}
		}
	}
	if total > 0 && float64(agree)/float64(total) < 0.8 {
		t.Fatalf("depth ordering agreement %d/%d below 80%%", agree, total)
	}
}

func TestHistogramIdentitySeparation(t *testing.T) {
	// Same object rendered at two times should have closer histograms than
	// two different identities.
	rng := rand.New(rand.NewSource(12))
	horizon := 25
	sc := &Scene{W: 192, H: 108, Horizon: horizon, Focal: 36,
		Background: NewTrafficBackground(192, 108, horizon)}
	a := NewObject(1, ClassCar, rng)
	a.X0, a.Z0, a.VX = 20, 4, 0.5
	a.Appear, a.Vanish = 0, 1000
	b := NewObject(2, ClassCar, rng)
	b.X0, b.Z0, b.VX = 70, 4, 0.5
	b.Appear, b.Vanish = 0, 1000
	sc.Objects = []*Object{a, b}

	crop := func(t0 int, id uint64) *codec.Image {
		img, gts := sc.Render(t0)
		for _, gt := range gts {
			if gt.ID == id {
				return img.Crop(gt.X1, gt.Y1, gt.X2, gt.Y2)
			}
		}
		return nil
	}
	a0, a1 := crop(0, 1), crop(8, 1)
	b0 := crop(0, 2)
	if a0 == nil || a1 == nil || b0 == nil {
		t.Fatal("objects not all visible")
	}
	ha0, ha1, hb0 := ColorHistogram(a0), ColorHistogram(a1), ColorHistogram(b0)
	same := l2(ha0, ha1)
	diff := l2(ha0, hb0)
	if same >= diff {
		t.Fatalf("same-identity distance %.3f >= cross-identity %.3f", same, diff)
	}
}

func l2(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return math.Sqrt(s)
}

func TestEmbedderProperties(t *testing.T) {
	e := NewEmbedder(exec.New(exec.CPU), 42)
	img := codec.NewImage(20, 30)
	for i := range img.Pix {
		img.Pix[i] = uint8(i % 251)
	}
	v1 := e.Embed(img)
	v2 := e.Embed(img)
	if len(v1) != e.Dim() {
		t.Fatalf("dim %d, want %d", len(v1), e.Dim())
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("embedding not deterministic")
		}
	}
	var norm float64
	for _, v := range v1 {
		norm += float64(v) * float64(v)
	}
	if math.Abs(norm-1) > 1e-3 {
		t.Fatalf("embedding norm %f != 1", norm)
	}
}

func TestIoU(t *testing.T) {
	if got := IoU(0, 0, 10, 10, 0, 0, 10, 10); got != 1 {
		t.Fatalf("identical IoU = %f", got)
	}
	if got := IoU(0, 0, 10, 10, 20, 20, 30, 30); got != 0 {
		t.Fatalf("disjoint IoU = %f", got)
	}
	if got := IoU(0, 0, 10, 10, 5, 0, 15, 10); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("half-overlap IoU = %f", got)
	}
}

func TestGlyphTable(t *testing.T) {
	if len(GlyphSet()) != 36 {
		t.Fatalf("glyph set size %d, want 36", len(GlyphSet()))
	}
	// Distinctness: no two glyphs identical.
	set := GlyphSet()
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			same := true
			for y := 0; y < GlyphH && same; y++ {
				for x := 0; x < GlyphW; x++ {
					if glyphPixel(set[i], x, y) != glyphPixel(set[j], x, y) {
						same = false
						break
					}
				}
			}
			if same {
				t.Fatalf("glyphs %c and %c identical", set[i], set[j])
			}
		}
	}
}

func TestResize(t *testing.T) {
	img := codec.NewImage(10, 10)
	img.Set(0, 0, 0, 255)
	out := Resize(img, 20, 20)
	if out.W != 20 || out.H != 20 {
		t.Fatalf("resize %dx%d", out.W, out.H)
	}
	if out.At(0, 0, 0) != 255 || out.At(1, 1, 0) != 255 {
		t.Fatal("nearest-neighbour upscale wrong")
	}
	if same := Resize(img, 10, 10); same != img {
		t.Fatal("no-op resize should return the input")
	}
}

// TestOCRDegradesWithLossyEncoding: recognition accuracy must fall (or at
// worst hold) as encoding quality drops — the OCR facet of Figure 2's
// storage/accuracy coupling.
func TestOCRDegradesWithLossyEncoding(t *testing.T) {
	img := codec.NewImage(220, 100)
	for i := range img.Pix {
		img.Pix[i] = 246
	}
	words := []string{"INVOICE", "TOTAL", "LEDGER", "BUDGET42", "XQJZ"}
	for i, w := range words {
		DrawString(img, w, 6, 6+i*18, 2, [3]uint8{18, 18, 18})
	}
	ocr := NewDocumentOCR()
	score := func(dec *codec.Image) int {
		got := map[string]bool{}
		for _, w := range ocr.Recognize(dec) {
			got[w.Text] = true
		}
		n := 0
		for _, w := range words {
			if got[w] {
				n++
			}
		}
		return n
	}
	clean := score(img)
	if clean < len(words)-1 {
		t.Fatalf("clean OCR recovered %d/%d", clean, len(words))
	}
	qualities := []codec.Quality{codec.QualityHigh, codec.QualityMedium, codec.QualityLow}
	prev := clean
	for _, q := range qualities {
		enc, err := codec.EncodeDLJ(img, q)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := codec.DecodeDLJ(enc)
		if err != nil {
			t.Fatal(err)
		}
		n := score(dec)
		if n > prev {
			t.Fatalf("quality %v recovered %d words, more than better quality (%d)", q, n, prev)
		}
		prev = n
	}
	if prev == clean {
		t.Logf("note: OCR fully robust down to quality low at this scale (%d/%d)", prev, clean)
	}
}
