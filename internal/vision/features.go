package vision

import (
	"math"
	"math/rand"
	"sync"

	"repro/internal/codec"
	"repro/internal/exec"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// HistogramDim is the length of the color-histogram feature vector
// (4x4x4 RGB bins), the "low-dimensional" feature family of Figure 7.
const HistogramDim = 64

// ColorHistogram computes an L2-normalized 4x4x4 RGB histogram of img —
// the image-matching feature the paper's Example 2 builds KD-trees and
// ball trees over. Bin assignment is trilinear (soft), so the distance
// between histograms varies continuously with color shifts: two renders of
// the same identity stay near-identical while distinct identities separate
// even when their colors share coarse bins.
func ColorHistogram(img *codec.Image) []float32 {
	const bins = 4
	h := make([]float32, HistogramDim)
	n := img.W * img.H
	var f [3]float64
	var lo, hi [3]int
	var wl, wh [3]float64
	for i := 0; i < n; i++ {
		for c := 0; c < 3; c++ {
			f[c] = float64(img.Pix[i*3+c]) / 255 * (bins - 1)
			lo[c] = int(f[c])
			hi[c] = lo[c] + 1
			if hi[c] >= bins {
				hi[c] = bins - 1
			}
			wh[c] = f[c] - float64(lo[c])
			wl[c] = 1 - wh[c]
		}
		for ri := 0; ri < 2; ri++ {
			rb, rw := lo[0], wl[0]
			if ri == 1 {
				rb, rw = hi[0], wh[0]
			}
			if rw == 0 {
				continue
			}
			for gi := 0; gi < 2; gi++ {
				gb, gw := lo[1], wl[1]
				if gi == 1 {
					gb, gw = hi[1], wh[1]
				}
				if gw == 0 {
					continue
				}
				for bi := 0; bi < 2; bi++ {
					bb, bw := lo[2], wl[2]
					if bi == 1 {
						bb, bw = hi[2], wh[2]
					}
					if bw == 0 {
						continue
					}
					h[(rb*bins+gb)*bins+bb] += float32(rw * gw * bw)
				}
			}
		}
	}
	var norm float64
	for _, v := range h {
		norm += float64(v) * float64(v)
	}
	if norm > 0 {
		inv := float32(1 / math.Sqrt(norm))
		for i := range h {
			h[i] *= inv
		}
	}
	return h
}

// GridHistogram computes per-cell color histograms over a grid x grid
// spatial partition of img, concatenated and jointly L2-normalized
// (grid*grid*HistogramDim dims). Spatial structure separates images that
// share a global palette but differ in layout — the whole-image
// near-duplicate feature.
func GridHistogram(img *codec.Image, grid int) []float32 {
	out := make([]float32, grid*grid*HistogramDim)
	for gy := 0; gy < grid; gy++ {
		for gx := 0; gx < grid; gx++ {
			cell := img.Crop(gx*img.W/grid, gy*img.H/grid, (gx+1)*img.W/grid, (gy+1)*img.H/grid)
			h := ColorHistogram(cell)
			copy(out[(gy*grid+gx)*HistogramDim:], h)
		}
	}
	var norm float64
	for _, v := range out {
		norm += float64(v) * float64(v)
	}
	if norm > 0 {
		inv := float32(1 / math.Sqrt(norm))
		for i := range out {
			out[i] *= inv
		}
	}
	return out
}

// projCache holds fixed random projection matrices keyed by (in, out).
var projCache = map[[2]int][]float32{}
var projMu sync.Mutex

// RandomProject maps vec to outDim dimensions with a fixed random Gaussian
// matrix (Johnson-Lindenstrauss: pairwise distances are approximately
// preserved), then L2-normalizes. The paper's Example 2 motivates exactly
// this: "most image matching algorithms use lower dimensional features to
// match".
func RandomProject(vec []float32, outDim int) []float32 {
	key := [2]int{len(vec), outDim}
	projMu.Lock()
	m, ok := projCache[key]
	if !ok {
		rng := rand.New(rand.NewSource(int64(len(vec))*1_000_003 + int64(outDim)))
		m = make([]float32, len(vec)*outDim)
		scale := float32(1 / math.Sqrt(float64(outDim)))
		for i := range m {
			m[i] = float32(rng.NormFloat64()) * scale
		}
		projCache[key] = m
	}
	projMu.Unlock()
	out := make([]float32, outDim)
	for i, v := range vec {
		if v == 0 {
			continue
		}
		row := m[i*outDim : (i+1)*outDim]
		for j := range row {
			out[j] += v * row[j]
		}
	}
	var norm float64
	for _, v := range out {
		norm += float64(v) * float64(v)
	}
	if norm > 0 {
		inv := float32(1 / math.Sqrt(norm))
		for i := range out {
			out[i] *= inv
		}
	}
	return out
}

// NearDupFeature is the whole-image matching feature: a 3x3 grid histogram
// projected to 64 dimensions.
func NearDupFeature(img *codec.Image) []float32 {
	return RandomProject(GridHistogram(img, 3), 64)
}

// Embedder produces high-dimensional patch embeddings from the shared
// convolutional backbone plus the color histogram — the "high-dimensional"
// feature family of Figure 7. Embeddings of the same object under small
// pixel perturbations stay close; different identities separate by color
// signature.
type Embedder struct {
	dev      exec.Device
	net      *nn.Network
	netDim   int
	inputRes int
}

// NewEmbedder builds the embedder on dev with fixed seed weights.
func NewEmbedder(dev exec.Device, seed int64) *Embedder {
	return &Embedder{dev: dev, net: nn.NewBackbone(64, seed+2), netDim: 64, inputRes: 32}
}

// Dim returns the embedding dimensionality.
func (e *Embedder) Dim() int { return e.netDim + HistogramDim }

// Embed computes the patch embedding: backbone features concatenated with
// the color histogram, L2-normalized jointly. The histogram half carries
// the identity signal; the backbone half adds texture sensitivity and the
// inference cost the ETL phase pays.
func (e *Embedder) Embed(patch *codec.Image) []float32 {
	return e.EmbedBatch([]*codec.Image{patch})[0]
}

// EmbedBatch embeds several patches with one batched backbone pass per
// layer (the launch-overhead amortization accelerators need).
func (e *Embedder) EmbedBatch(patches []*codec.Image) [][]float32 {
	if len(patches) == 0 {
		return nil
	}
	ins := make([]*tensor.Tensor, len(patches))
	for i, p := range patches {
		in := Resize(p, e.inputRes, e.inputRes)
		ins[i] = nn.ImageToCHW(in.Pix, in.W, in.H)
	}
	feats := e.net.ForwardBatch(e.dev, ins)
	out := make([][]float32, len(patches))
	for i := range patches {
		out[i] = e.assemble(feats[i], patches[i])
	}
	nn.ReleaseTensors(feats) // assemble copied what it needed
	nn.ReleaseTensors(ins)
	return out
}

// assemble fuses backbone features with the color histogram.
func (e *Embedder) assemble(feat *tensor.Tensor, patch *codec.Image) []float32 {
	hist := ColorHistogram(patch)
	out := make([]float32, e.netDim+HistogramDim)
	copy(out, feat.F32s)
	// Backbone activations vary in scale; normalize that half alone first.
	var bn float64
	for _, v := range out[:e.netDim] {
		bn += float64(v) * float64(v)
	}
	if bn > 0 {
		inv := float32(0.5 / math.Sqrt(bn)) // weight backbone half at 0.5
		for i := 0; i < e.netDim; i++ {
			out[i] *= inv
		}
	}
	copy(out[e.netDim:], hist)
	var norm float64
	for _, v := range out {
		norm += float64(v) * float64(v)
	}
	if norm > 0 {
		inv := float32(1 / math.Sqrt(norm))
		for i := range out {
			out[i] *= inv
		}
	}
	return out
}
