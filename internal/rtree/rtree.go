// Package rtree implements an n-dimensional R-tree for the bounding-box
// queries DeepLens runs over patch geometry: intersection, containment,
// and window (range) queries. It replaces the paper's libspatialindex
// dependency. Construction supports both one-at-a-time insertion with
// quadratic split (the configuration Figure 6 measures, whose cost is ~20x
// a B+ tree's) and Sort-Tile-Recursive bulk loading.
package rtree

import (
	"fmt"
	"math"
	"sort"
)

// Rect is an n-dimensional axis-aligned rectangle: Min[i] <= Max[i].
type Rect struct {
	Min, Max []float64
}

// NewRect validates and returns a rectangle.
func NewRect(min, max []float64) (Rect, error) {
	if len(min) != len(max) || len(min) == 0 {
		return Rect{}, fmt.Errorf("rtree: min/max dims %d/%d invalid", len(min), len(max))
	}
	for i := range min {
		if min[i] > max[i] {
			return Rect{}, fmt.Errorf("rtree: min[%d]=%g > max[%d]=%g", i, min[i], i, max[i])
		}
	}
	return Rect{Min: min, Max: max}, nil
}

// Point returns a degenerate rectangle at p.
func Point(p []float64) Rect { return Rect{Min: p, Max: p} }

// BBox2D builds a 2-D rectangle from pixel bounding-box coordinates.
func BBox2D(x1, y1, x2, y2 float64) Rect {
	return Rect{Min: []float64{x1, y1}, Max: []float64{x2, y2}}
}

// Intersects reports whether r and o overlap (closed intervals).
func (r Rect) Intersects(o Rect) bool {
	for i := range r.Min {
		if r.Max[i] < o.Min[i] || o.Max[i] < r.Min[i] {
			return false
		}
	}
	return true
}

// Contains reports whether r fully contains o.
func (r Rect) Contains(o Rect) bool {
	for i := range r.Min {
		if o.Min[i] < r.Min[i] || o.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Area returns the hyper-volume of r.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Min {
		a *= r.Max[i] - r.Min[i]
	}
	return a
}

func (r Rect) clone() Rect {
	return Rect{Min: append([]float64(nil), r.Min...), Max: append([]float64(nil), r.Max...)}
}

// union grows r in place to cover o.
func (r *Rect) union(o Rect) {
	for i := range r.Min {
		if o.Min[i] < r.Min[i] {
			r.Min[i] = o.Min[i]
		}
		if o.Max[i] > r.Max[i] {
			r.Max[i] = o.Max[i]
		}
	}
}

func union(a, b Rect) Rect {
	u := a.clone()
	u.union(b)
	return u
}

// enlargement returns the area increase of a if grown to cover b.
func enlargement(a, b Rect) float64 { return union(a, b).Area() - a.Area() }

// Entry is a leaf item: a rectangle and a caller-assigned identifier.
type Entry struct {
	Rect Rect
	ID   uint64
}

const (
	// maxEntries matches libspatialindex-style node capacities; the
	// quadratic split's O(maxEntries^2) seed search is the dominant
	// construction cost Figure 6 measures.
	maxEntries = 64
	minEntries = maxEntries * 2 / 5
)

type node struct {
	bbox     Rect
	leaf     bool
	entries  []Entry // leaf only
	children []*node // inner only
}

// Tree is an in-memory n-dimensional R-tree.
type Tree struct {
	dim  int
	root *node
	size int
}

// New creates an empty tree for dim-dimensional rectangles.
func New(dim int) *Tree {
	return &Tree{dim: dim, root: &node{leaf: true}}
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Dim returns the tree's dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Insert adds an entry using the classic choose-leaf / quadratic-split
// algorithm.
func (t *Tree) Insert(r Rect, id uint64) error {
	if len(r.Min) != t.dim {
		return fmt.Errorf("rtree: rect dim %d, tree dim %d", len(r.Min), t.dim)
	}
	e := Entry{Rect: r.clone(), ID: id}
	split := t.insert(t.root, e)
	if split != nil {
		old := t.root
		t.root = &node{children: []*node{old, split}}
		t.root.bbox = union(old.bbox, split.bbox)
	}
	t.size++
	return nil
}

func (t *Tree) insert(n *node, e Entry) *node {
	if t.size == 0 && n == t.root && n.leaf && len(n.entries) == 0 {
		n.bbox = e.Rect.clone()
	}
	if n.leaf {
		n.entries = append(n.entries, e)
		n.bbox.union(e.Rect)
		if len(n.entries) > maxEntries {
			return splitLeaf(n)
		}
		return nil
	}
	// Choose child needing least enlargement (ties: smallest area).
	best := 0
	bestEnl := math.Inf(1)
	for i, c := range n.children {
		enl := enlargement(c.bbox, e.Rect)
		if enl < bestEnl || (enl == bestEnl && c.bbox.Area() < n.children[best].bbox.Area()) {
			best, bestEnl = i, enl
		}
	}
	split := t.insert(n.children[best], e)
	n.bbox.union(e.Rect)
	if split != nil {
		n.children = append(n.children, split)
		n.bbox.union(split.bbox)
		if len(n.children) > maxEntries {
			return splitInner(n)
		}
	}
	return nil
}

// quadratic pick-seeds over arbitrary bounding boxes.
func pickSeeds(boxes []Rect) (int, int) {
	s1, s2 := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(boxes); i++ {
		for j := i + 1; j < len(boxes); j++ {
			d := union(boxes[i], boxes[j]).Area() - boxes[i].Area() - boxes[j].Area()
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	return s1, s2
}

func splitLeaf(n *node) *node {
	boxes := make([]Rect, len(n.entries))
	for i, e := range n.entries {
		boxes[i] = e.Rect
	}
	g1, g2 := quadraticPartition(boxes)
	e1 := make([]Entry, 0, len(g1))
	e2 := make([]Entry, 0, len(g2))
	for _, i := range g1 {
		e1 = append(e1, n.entries[i])
	}
	for _, i := range g2 {
		e2 = append(e2, n.entries[i])
	}
	sib := &node{leaf: true, entries: e2}
	sib.recomputeBBox()
	n.entries = e1
	n.recomputeBBox()
	return sib
}

func splitInner(n *node) *node {
	boxes := make([]Rect, len(n.children))
	for i, c := range n.children {
		boxes[i] = c.bbox
	}
	g1, g2 := quadraticPartition(boxes)
	c1 := make([]*node, 0, len(g1))
	c2 := make([]*node, 0, len(g2))
	for _, i := range g1 {
		c1 = append(c1, n.children[i])
	}
	for _, i := range g2 {
		c2 = append(c2, n.children[i])
	}
	sib := &node{children: c2}
	sib.recomputeBBox()
	n.children = c1
	n.recomputeBBox()
	return sib
}

// quadraticPartition splits indexes 0..len(boxes)-1 into two groups with
// Guttman's quadratic algorithm, respecting the minimum fill factor.
func quadraticPartition(boxes []Rect) (g1, g2 []int) {
	s1, s2 := pickSeeds(boxes)
	g1 = []int{s1}
	g2 = []int{s2}
	b1 := boxes[s1].clone()
	b2 := boxes[s2].clone()
	rest := make([]int, 0, len(boxes)-2)
	for i := range boxes {
		if i != s1 && i != s2 {
			rest = append(rest, i)
		}
	}
	for len(rest) > 0 {
		// Force assignment when one group must take all remaining to reach min.
		if len(g1)+len(rest) == minEntries {
			for _, i := range rest {
				g1 = append(g1, i)
				b1.union(boxes[i])
			}
			break
		}
		if len(g2)+len(rest) == minEntries {
			for _, i := range rest {
				g2 = append(g2, i)
				b2.union(boxes[i])
			}
			break
		}
		// Pick the entry with max preference for one group.
		bestIdx, bestDiff, bestTo := -1, -1.0, 1
		for ri, i := range rest {
			d1 := enlargement(b1, boxes[i])
			d2 := enlargement(b2, boxes[i])
			diff := math.Abs(d1 - d2)
			if diff > bestDiff {
				bestDiff, bestIdx = diff, ri
				if d1 < d2 {
					bestTo = 1
				} else {
					bestTo = 2
				}
			}
		}
		i := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		if bestTo == 1 {
			g1 = append(g1, i)
			b1.union(boxes[i])
		} else {
			g2 = append(g2, i)
			b2.union(boxes[i])
		}
	}
	return g1, g2
}

func (n *node) recomputeBBox() {
	if n.leaf {
		if len(n.entries) == 0 {
			return
		}
		n.bbox = n.entries[0].Rect.clone()
		for _, e := range n.entries[1:] {
			n.bbox.union(e.Rect)
		}
		return
	}
	if len(n.children) == 0 {
		return
	}
	n.bbox = n.children[0].bbox.clone()
	for _, c := range n.children[1:] {
		n.bbox.union(c.bbox)
	}
}

// SearchIntersect calls fn for every entry whose rectangle intersects q.
func (t *Tree) SearchIntersect(q Rect, fn func(Entry) bool) {
	if t.size == 0 {
		return
	}
	searchIntersect(t.root, q, fn)
}

func searchIntersect(n *node, q Rect, fn func(Entry) bool) bool {
	if !n.bbox.Intersects(q) {
		return true
	}
	if n.leaf {
		for _, e := range n.entries {
			if e.Rect.Intersects(q) {
				if !fn(e) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if !searchIntersect(c, q, fn) {
			return false
		}
	}
	return true
}

// SearchContained calls fn for every entry whose rectangle lies fully
// inside q (containment query).
func (t *Tree) SearchContained(q Rect, fn func(Entry) bool) {
	if t.size == 0 {
		return
	}
	searchContained(t.root, q, fn)
}

func searchContained(n *node, q Rect, fn func(Entry) bool) bool {
	if !n.bbox.Intersects(q) {
		return true
	}
	if n.leaf {
		for _, e := range n.entries {
			if q.Contains(e.Rect) {
				if !fn(e) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if !searchContained(c, q, fn) {
			return false
		}
	}
	return true
}

// BulkLoad builds a tree from entries with Sort-Tile-Recursive packing,
// much cheaper than repeated Insert.
func BulkLoad(dim int, entries []Entry) *Tree {
	t := New(dim)
	if len(entries) == 0 {
		return t
	}
	es := append([]Entry(nil), entries...)
	leaves := strPack(es, dim, 0)
	for len(leaves) > 1 {
		leaves = strPackNodes(leaves, dim, 0)
	}
	t.root = leaves[0]
	t.size = len(entries)
	return t
}

func center(r Rect, d int) float64 { return (r.Min[d] + r.Max[d]) / 2 }

func strPack(es []Entry, dim, axis int) []*node {
	sort.Slice(es, func(i, j int) bool { return center(es[i].Rect, axis) < center(es[j].Rect, axis) })
	nslabs := int(math.Ceil(math.Pow(float64(len(es))/maxEntries, 1/float64(dim))))
	if nslabs < 1 {
		nslabs = 1
	}
	slab := (len(es) + nslabs - 1) / nslabs
	var out []*node
	for off := 0; off < len(es); off += slab {
		end := off + slab
		if end > len(es) {
			end = len(es)
		}
		chunk := es[off:end]
		if axis+1 < dim && len(chunk) > maxEntries {
			out = append(out, strPack(chunk, dim, axis+1)...)
			continue
		}
		// Final axis: cut into leaves of maxEntries.
		sort.Slice(chunk, func(i, j int) bool {
			return center(chunk[i].Rect, axis%dim) < center(chunk[j].Rect, axis%dim)
		})
		for lo := 0; lo < len(chunk); lo += maxEntries {
			hi := lo + maxEntries
			if hi > len(chunk) {
				hi = len(chunk)
			}
			leaf := &node{leaf: true, entries: append([]Entry(nil), chunk[lo:hi]...)}
			leaf.recomputeBBox()
			out = append(out, leaf)
		}
	}
	return out
}

func strPackNodes(ns []*node, dim, axis int) []*node {
	sort.Slice(ns, func(i, j int) bool { return center(ns[i].bbox, axis) < center(ns[j].bbox, axis) })
	var out []*node
	for lo := 0; lo < len(ns); lo += maxEntries {
		hi := lo + maxEntries
		if hi > len(ns) {
			hi = len(ns)
		}
		inner := &node{children: append([]*node(nil), ns[lo:hi]...)}
		inner.recomputeBBox()
		out = append(out, inner)
	}
	return out
}

// Height returns the tree height (leaf = 1); 0 when empty.
func (t *Tree) Height() int {
	if t.size == 0 {
		return 0
	}
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}
