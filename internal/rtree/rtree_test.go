package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randRect(rng *rand.Rand, dim int, extent float64) Rect {
	min := make([]float64, dim)
	max := make([]float64, dim)
	for d := 0; d < dim; d++ {
		a := rng.Float64() * 1000
		b := a + rng.Float64()*extent
		min[d], max[d] = a, b
	}
	return Rect{Min: min, Max: max}
}

// bruteIntersect is the reference implementation.
func bruteIntersect(entries []Entry, q Rect) []uint64 {
	var ids []uint64
	for _, e := range entries {
		if e.Rect.Intersects(q) {
			ids = append(ids, e.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func bruteContained(entries []Entry, q Rect) []uint64 {
	var ids []uint64
	for _, e := range entries {
		if q.Contains(e.Rect) {
			ids = append(ids, e.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func collectIntersect(t *Tree, q Rect) []uint64 {
	var ids []uint64
	t.SearchIntersect(q, func(e Entry) bool { ids = append(ids, e.ID); return true })
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func collectContained(t *Tree, q Rect) []uint64 {
	var ids []uint64
	t.SearchContained(q, func(e Entry) bool { ids = append(ids, e.ID); return true })
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	tr := New(2)
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatalf("empty tree Len=%d Height=%d", tr.Len(), tr.Height())
	}
	tr.SearchIntersect(BBox2D(0, 0, 10, 10), func(Entry) bool {
		t.Fatal("callback on empty tree")
		return true
	})
}

func TestInsertDimMismatch(t *testing.T) {
	tr := New(2)
	r, _ := NewRect([]float64{0, 0, 0}, []float64{1, 1, 1})
	if err := tr.Insert(r, 1); err == nil {
		t.Fatal("3-d rect accepted by 2-d tree")
	}
}

func TestNewRectValidation(t *testing.T) {
	if _, err := NewRect([]float64{1}, []float64{0}); err == nil {
		t.Fatal("inverted rect accepted")
	}
	if _, err := NewRect(nil, nil); err == nil {
		t.Fatal("empty rect accepted")
	}
	if _, err := NewRect([]float64{0}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched dims accepted")
	}
}

func TestIntersectMatchesBrute2D(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := New(2)
	var entries []Entry
	for i := 0; i < 2000; i++ {
		r := randRect(rng, 2, 30)
		entries = append(entries, Entry{Rect: r, ID: uint64(i)})
		if err := tr.Insert(r, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 100; trial++ {
		q := randRect(rng, 2, 120)
		want := bruteIntersect(entries, q)
		got := collectIntersect(tr, q)
		if !equalIDs(got, want) {
			t.Fatalf("trial %d: intersect %d ids, want %d", trial, len(got), len(want))
		}
	}
}

func TestContainedMatchesBrute2D(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := New(2)
	var entries []Entry
	for i := 0; i < 1500; i++ {
		r := randRect(rng, 2, 20)
		entries = append(entries, Entry{Rect: r, ID: uint64(i)})
		tr.Insert(r, uint64(i))
	}
	for trial := 0; trial < 100; trial++ {
		q := randRect(rng, 2, 300)
		if !equalIDs(collectContained(tr, q), bruteContained(entries, q)) {
			t.Fatalf("trial %d: containment mismatch", trial)
		}
	}
}

func TestHigherDimensions(t *testing.T) {
	for _, dim := range []int{3, 4, 8} {
		rng := rand.New(rand.NewSource(int64(dim)))
		tr := New(dim)
		var entries []Entry
		for i := 0; i < 500; i++ {
			r := randRect(rng, dim, 50)
			entries = append(entries, Entry{Rect: r, ID: uint64(i)})
			tr.Insert(r, uint64(i))
		}
		for trial := 0; trial < 30; trial++ {
			q := randRect(rng, dim, 200)
			if !equalIDs(collectIntersect(tr, q), bruteIntersect(entries, q)) {
				t.Fatalf("dim %d trial %d: intersect mismatch", dim, trial)
			}
		}
	}
}

func TestBulkLoadMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var entries []Entry
	for i := 0; i < 5000; i++ {
		entries = append(entries, Entry{Rect: randRect(rng, 2, 25), ID: uint64(i)})
	}
	tr := BulkLoad(2, entries)
	if tr.Len() != len(entries) {
		t.Fatalf("BulkLoad Len = %d, want %d", tr.Len(), len(entries))
	}
	for trial := 0; trial < 100; trial++ {
		q := randRect(rng, 2, 100)
		if !equalIDs(collectIntersect(tr, q), bruteIntersect(entries, q)) {
			t.Fatalf("trial %d: bulk-load intersect mismatch", trial)
		}
	}
}

func TestBulkLoadEmptyAndTiny(t *testing.T) {
	if tr := BulkLoad(2, nil); tr.Len() != 0 {
		t.Fatal("empty bulk load")
	}
	one := []Entry{{Rect: BBox2D(1, 1, 2, 2), ID: 42}}
	tr := BulkLoad(2, one)
	got := collectIntersect(tr, BBox2D(0, 0, 3, 3))
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("single-entry bulk load: got %v", got)
	}
}

func TestEarlyStop(t *testing.T) {
	tr := New(2)
	for i := 0; i < 100; i++ {
		tr.Insert(BBox2D(0, 0, 1, 1), uint64(i))
	}
	n := 0
	tr.SearchIntersect(BBox2D(0, 0, 2, 2), func(Entry) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d, want 5", n)
	}
}

func TestDuplicateRects(t *testing.T) {
	tr := New(2)
	r := BBox2D(10, 10, 20, 20)
	for i := 0; i < 200; i++ {
		tr.Insert(r, uint64(i))
	}
	got := collectIntersect(tr, r)
	if len(got) != 200 {
		t.Fatalf("duplicate rects: found %d of 200", len(got))
	}
}

// Property: every inserted entry is findable by a query equal to its rect.
func TestQuickSelfQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tr := New(3)
	var entries []Entry
	f := func(seed int64) bool {
		r := randRect(rand.New(rand.NewSource(seed)), 3, 40)
		id := uint64(len(entries))
		entries = append(entries, Entry{Rect: r, ID: id})
		if err := tr.Insert(r, id); err != nil {
			return false
		}
		found := false
		tr.SearchIntersect(r, func(e Entry) bool {
			if e.ID == id {
				found = true
				return false
			}
			return true
		})
		return found
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHeightGrows(t *testing.T) {
	tr := New(2)
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 2000; i++ {
		tr.Insert(randRect(rng, 2, 5), uint64(i))
	}
	if h := tr.Height(); h < 2 {
		t.Fatalf("height %d after 2000 inserts, want >= 2", h)
	}
}
