// Serving: the DeepLens query service embedded in a program.
//
// A small TrafficCam/PC/Football corpus is ingested, then the concurrent
// serving layer answers a mixed workload twice — cold and warm — showing
// the result cache, the UDF materialization cache, and cache-aware plan
// costs at work.
//
//	go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/service"
)

type trafficSource struct{ tr *dataset.Traffic }

func (t trafficSource) Frames() int { return t.tr.Frames }
func (t trafficSource) Render(i int) (*codec.Image, error) {
	img, _ := t.tr.Render(i)
	return img, nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "deeplens-serving")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	cfg := dataset.Default()
	cfg.TrafficFrames = 120
	cfg.PCImages = 60
	cfg.FootballClips = 1
	cfg.FootballClipLen = 20

	fmt.Println("ingesting...")
	env, err := bench.NewEnv(dir, cfg, exec.New(exec.CPU))
	if err != nil {
		return err
	}
	defer env.Close()

	svc, err := service.New(env.DB, service.Config{Workers: 4, ModelSeed: bench.ModelSeed})
	if err != nil {
		return err
	}
	defer svc.Close()
	svc.RegisterSource("trafficcam", trafficSource{env.Traffic})

	str := func(s string) *string { return &s }
	queries := []struct {
		name string
		req  service.Request
	}{
		{"count pedestrians (hash index)", service.Request{
			Collection: bench.ColTrafficDets,
			Filter:     &service.FilterSpec{Field: "label", Str: str("pedestrian"), UseIndex: true},
		}},
		{"distinct pedestrian identities (q4)", service.Request{
			Collection: bench.ColTrafficDets,
			Filter:     &service.FilterSpec{Field: "label", Str: str("pedestrian")},
			SimJoin:    &service.SimJoinSpec{Field: "emb", Eps: 0.15, MinCluster: 2},
			Distinct:   true,
		}},
		{"near-duplicate PC images (q1, ball tree)", service.Request{
			Collection: bench.ColPCImages,
			SimJoin:    &service.SimJoinSpec{Field: "ghist", Eps: 0.066, UseIndex: true},
		}},
		{"cars in first 30 frames (inference sweep)", service.Request{
			Infer: &service.InferSpec{Source: "trafficcam", From: 0, To: 30,
				UDF: "detect", Label: "car"},
		}},
	}

	ctx := context.Background()
	for pass := 1; pass <= 2; pass++ {
		fmt.Printf("\n--- pass %d (%s) ---\n", pass, map[int]string{1: "cold", 2: "warm"}[pass])
		for _, q := range queries {
			t0 := time.Now()
			resp, err := svc.Query(ctx, q.req)
			if err != nil {
				return fmt.Errorf("%s: %w", q.name, err)
			}
			fmt.Printf("%-44s value=%-5d %8v  hit=%-5v plan=%s\n",
				q.name, resp.Value, time.Since(t0).Round(time.Microsecond),
				resp.CacheHit, resp.Plan)
		}
	}

	st := svc.Stats()
	fmt.Printf("\nresult cache: %d hits / %d misses; udf cache: %d hits / %d misses\n",
		st.ResultCache.Hits, st.ResultCache.Misses, st.UDFCache.Hits, st.UDFCache.Misses)
	fmt.Printf("cache-aware costing: a warm plan reports ~%.1fµs instead of its cold estimate\n",
		1e6*2e-6)
	return nil
}
