// Crossvideo: the paper's Example 2 — find cars that appear in two
// different CCTV feeds.
//
// Two cameras watch different streets; some car identities drive past
// both. Each feed is detected and embedded independently; the cross-feed
// similarity join matches embeddings with the on-the-fly ball-tree index
// (built over the smaller relation), and the optimizer's cost model is
// shown choosing a physical plan.
//
//	go run ./examples/crossvideo
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/vision"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// buildScene constructs one camera's scene over a shared pool of car
// objects plus camera-local traffic.
func buildScene(shared []*vision.Object, localSeed int64, frames int) *vision.Scene {
	rng := rand.New(rand.NewSource(localSeed))
	const w, h = 192, 108
	horizon := h / 4
	sc := &vision.Scene{
		W: w, H: h, Horizon: horizon, Focal: float64(h) / 3,
		Background: vision.NewTrafficBackground(w, h, horizon),
	}
	// Shared identities drive through at camera-specific times.
	for i, proto := range shared {
		o := *proto
		o.X0 = -6
		o.VX = 0.5 + rng.Float64()*0.3
		o.Z0 = 4 + rng.Float64()*3
		o.Appear = i * frames / (len(shared) + 1)
		o.Vanish = o.Appear + int(112/o.VX)
		sc.Objects = append(sc.Objects, &o)
	}
	// Local-only traffic.
	for t := 10; t < frames; t += 45 + rng.Intn(30) {
		car := vision.NewObject(uint64(1000+localSeed*100)+uint64(t), vision.ClassCar, rng)
		car.X0, car.VX = -6, 0.4+rng.Float64()*0.5
		car.Z0 = 4 + rng.Float64()*5
		car.Appear, car.Vanish = t, t+int(112/car.VX)
		sc.Objects = append(sc.Objects, car)
	}
	return sc
}

func run() error {
	dir, err := os.MkdirTemp("", "deeplens-crossvideo")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	const frames = 150

	// Shared car identities that pass both cameras.
	rng := rand.New(rand.NewSource(7))
	shared := make([]*vision.Object, 3)
	for i := range shared {
		shared[i] = vision.NewObject(uint64(i+1), vision.ClassCar, rng)
	}
	camA := buildScene(shared, 1, frames)
	camB := buildScene(shared, 2, frames)

	db, err := core.Open(filepath.Join(dir, "deeplens.db"), exec.New(exec.CPU))
	if err != nil {
		return err
	}
	defer db.Close()
	det := vision.NewDetector(db.Device(), 42)
	emb := vision.NewEmbedder(db.Device(), 42)

	ingest := func(name string, sc *vision.Scene) (*core.Collection, error) {
		t := 0
		framesIt := core.NewFuncIterator(func() (core.Tuple, bool, error) {
			if t >= frames {
				return nil, false, nil
			}
			img, _ := sc.Render(t)
			p := &core.Patch{
				Ref:  core.Ref{Source: name, Frame: uint64(t)},
				Data: core.ImageToTensor(img),
				Meta: core.Metadata{"frameno": core.IntV(int64(t))},
			}
			t++
			return core.Tuple{p}, true, nil
		}, nil)
		it := core.DetectGenerator(det, framesIt)
		it = core.Select(it, core.FieldEq("label", core.StrV("car")))
		it = core.EmbedTransformer(emb, it)
		it = core.DropData(it)
		schema := core.DetectionSchema().
			WithField(core.Field{Name: "emb", Kind: core.KindVec, VecDim: emb.Dim()})
		return db.Materialize(name+".cars", schema, it)
	}
	colA, err := ingest("camA", camA)
	if err != nil {
		return err
	}
	colB, err := ingest("camB", camB)
	if err != nil {
		return err
	}
	fmt.Printf("camA: %d car patches, camB: %d car patches\n", colA.Len(), colB.Len())

	// The optimizer picks the physical join; show its reasoning.
	cm := core.DefaultCostModel()
	plan := cm.PlanSimilarityJoin(colA.Len(), colB.Len(), emb.Dim(), false)
	fmt.Printf("optimizer chose %s on %s (est %.4fs)\n", plan.Method, plan.Device, plan.EstCost)

	psA, _ := colA.Patches()
	psB, _ := colB.Patches()
	pairs, err := core.SimilarityJoinOnTheFly(psA, psB, core.SimilarityJoinOpts{
		LeftField: "emb", RightField: "emb", Eps: 0.12})
	if err != nil {
		return err
	}

	// Group matched pairs into cross-camera identities.
	matchedA := map[core.PatchID]bool{}
	frameHits := map[[2]uint64]bool{}
	for _, pr := range pairs {
		matchedA[pr[0].ID] = true
		frameHits[[2]uint64{pr[0].Ref.Frame, pr[1].Ref.Frame}] = true
	}
	fmt.Printf("similarity join: %d cross-feed matches covering %d camA patches\n",
		len(pairs), len(matchedA))
	fmt.Printf("ground truth: %d car identities were planted in both feeds\n", len(shared))
	if len(pairs) == 0 {
		return fmt.Errorf("no cross-feed matches found")
	}
	fmt.Println("sample matched (camA frame, camB frame) pairs:")
	n := 0
	for fh := range frameHits {
		fmt.Printf("  camA@%d <-> camB@%d\n", fh[0], fh[1])
		if n++; n >= 5 {
			break
		}
	}
	return nil
}
