// Advisor: the paper's two "future work" systems working together.
//
// The storage advisor (§3) analyzes a CCTV workload and picks a storage
// scheme; the pipeline synthesizer (§4) assembles the cheapest ETL
// pipeline meeting a query's label/field requirements from a library of
// scored components. The advised store is built, ingested, and queried
// through the synthesized pipeline.
//
//	go run ./examples/advisor
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bench"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/kv"
	"repro/internal/video"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "deeplens-advisor")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// A small CCTV corpus to manage.
	cfg := dataset.Default()
	cfg.TrafficFrames = 240
	cfg.PCImages = 10
	cfg.FootballClips = 1
	cfg.FootballClipLen = 10

	// 1. Describe the production workload to the storage advisor: a 1080p
	//    camera scanned a few times a day with narrow temporal windows,
	//    tolerating mild loss. (The demo then ingests a downscaled feed in
	//    the advised format.)
	w := video.Workload{
		Frames:              35280,
		FrameBytes:          1920 * 1080 * 3,
		ScansPerDay:         12,
		TemporalSelectivity: 0.1,
		MinAccuracy:         0.97,
	}
	advice, err := video.Advise(w, video.DefaultCostProfile())
	if err != nil {
		return err
	}
	fmt.Println("storage advisor:", advice.Rationale)

	// 2. Build the advised store and ingest the camera feed.
	st, err := kv.Open(filepath.Join(dir, "video.db"))
	if err != nil {
		return err
	}
	defer st.Close()
	bucket, err := st.Bucket("cam")
	if err != nil {
		return err
	}
	traffic := dataset.NewTraffic(cfg)
	store, err := advice.Build(bucket, filepath.Join(dir, "cam.dlv"))
	if err != nil {
		return err
	}
	if err := video.Ingest(store, uint64(traffic.Frames), func(i uint64) *codec.Image {
		img, _ := traffic.Render(int(i))
		return img
	}); err != nil {
		return err
	}
	bytes, _ := store.StorageBytes()
	fmt.Printf("ingested %d frames into %v: %.1f KiB\n", traffic.Frames, store.Format(), float64(bytes)/1024)

	// 3. Ask the synthesizer for a pipeline: the query needs pedestrian
	//    labels with per-patch depth (q6's requirement).
	env, err := bench.NewEnv(dir, cfg, exec.New(exec.CPU))
	if err != nil {
		return err
	}
	defer env.Close()
	lib, err := env.NewLibrary()
	if err != nil {
		return err
	}
	sp, err := lib.Synthesize(core.Requirement{
		NeedLabel:  "pedestrian",
		NeedFields: []string{"depth"},
	})
	if err != nil {
		return err
	}
	fmt.Println("pipeline synthesizer:", sp.Explain)

	// An unsatisfiable requirement is caught declaratively.
	if _, err := lib.Synthesize(core.Requirement{NeedLabel: "airplane"}); err != nil {
		fmt.Println("synthesizer rejected an impossible requirement:", err)
	}

	// 4. Run the synthesized pipeline over a temporal window of the
	//    advised store and count deep pedestrians.
	start := time.Now()
	frames := core.LoadVideo("cam", store, core.FrameRange{Lo: 120, Hi: 180})
	out := sp.Build(frames)
	out = core.Select(out, core.FieldEq("label", core.StrV("pedestrian")))
	ps, err := core.DrainPatches(out)
	if err != nil {
		return err
	}
	far := 0
	for _, p := range ps {
		if p.Meta["depth"].F > 5 {
			far++
		}
	}
	fmt.Printf("query over frames [120,180): %d pedestrian patches, %d farther than 5 units (%v)\n",
		len(ps), far, time.Since(start))
	return nil
}
