// Football: the paper's q3 — track one player's trajectory in every play
// using segmentation output (player detections) joined with OCR output
// (jersey numbers) through tuple-level lineage, then backtrace a result to
// its base frame.
//
//	go run ./examples/football
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/vision"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "deeplens-football")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	cfg := dataset.Default()
	cfg.FootballClips = 3
	cfg.FootballClipLen = 40
	fb := dataset.NewFootball(cfg)

	db, err := core.Open(filepath.Join(dir, "deeplens.db"), exec.New(exec.CPU))
	if err != nil {
		return err
	}
	defer db.Close()
	det := vision.NewDetector(db.Device(), 42)
	ocr := vision.NewJerseyOCR()

	detSchema := core.DetectionSchema().WithField(core.Field{Name: "clip", Kind: core.KindInt})
	dets, err := db.CreateCollection("players", detSchema)
	if err != nil {
		return err
	}
	wordSchema := core.OCRSchema().WithField(core.Field{Name: "clip", Kind: core.KindInt})
	words, err := db.CreateCollection("jerseys", wordSchema)
	if err != nil {
		return err
	}

	// ETL: detect players per frame, then OCR each detection patch; the
	// OCR generator records lineage (word.Parent -> detection patch).
	for c, clip := range fb.Clips {
		for t := 0; t < fb.ClipLen; t++ {
			img, _ := clip.Render(t)
			frame := &core.Patch{
				Ref:  core.Ref{Source: fmt.Sprintf("clip%02d", c), Frame: uint64(t)},
				Data: core.ImageToTensor(img),
				Meta: core.Metadata{"frameno": core.IntV(int64(t))},
			}
			detPatches, err := core.DrainPatches(core.DetectGenerator(det, core.NewSliceIterator([]core.Tuple{{frame}})))
			if err != nil {
				return err
			}
			for _, dp := range detPatches {
				dp.Meta["clip"] = core.IntV(int64(c))
				pixels := dp.Data
				dp.Data = nil
				if err := dets.Append(dp); err != nil {
					return err
				}
				dp.Data = pixels
				wordPatches, err := core.DrainPatches(core.OCRGenerator(ocr, core.NewSliceIterator([]core.Tuple{{dp}})))
				if err != nil {
					return err
				}
				dp.Data = nil
				for _, wp := range wordPatches {
					wp.Meta["clip"] = core.IntV(int64(c))
					wp.Ref.Parent = dp.ID
					wp.Data = nil
					if err := words.Append(wp); err != nil {
						return err
					}
				}
			}
		}
	}
	fmt.Printf("ETL: %d player detections, %d jersey readings across %d clips\n",
		dets.Len(), words.Len(), len(fb.Clips))

	// Query: jersey "7" words, joined to their generating detection via
	// the lineage pointer; assemble a per-clip trajectory.
	hits, err := core.DrainPatches(core.Select(words.Scan(),
		core.FieldEq("text", core.StrV(fb.TargetJersey))))
	if err != nil {
		return err
	}
	type point struct {
		frame int64
		cx    float64
	}
	traj := map[int64][]point{}
	for _, w := range hits {
		detPatch, err := db.GetPatch(w.Ref.Parent)
		if err != nil {
			return err
		}
		bb := detPatch.Meta["bbox"].V
		clip := w.Meta["clip"].I
		traj[clip] = append(traj[clip], point{
			frame: w.Meta["frameno"].I,
			cx:    float64(bb[0]+bb[2]) / 2,
		})
	}
	for clip := int64(0); clip < int64(len(fb.Clips)); clip++ {
		pts := traj[clip]
		sort.Slice(pts, func(i, j int) bool { return pts[i].frame < pts[j].frame })
		if len(pts) == 0 {
			fmt.Printf("clip %d: player %s not tracked\n", clip, fb.TargetJersey)
			continue
		}
		fmt.Printf("clip %d: player %s tracked in %d frames, x: %.0f -> %.0f\n",
			clip, fb.TargetJersey, len(pts), pts[0].cx, pts[len(pts)-1].cx)
	}

	// Backtrace one tracked word to its base data.
	if len(hits) > 0 {
		chain, err := db.Backtrace(hits[0])
		if err != nil {
			return err
		}
		fmt.Printf("lineage of word patch %d:", hits[0].ID)
		for _, anc := range chain {
			fmt.Printf(" -> patch %d (%s frame %d)", anc.ID, anc.Ref.Source, anc.Ref.Frame)
		}
		fmt.Println(" -> base image")
	}
	return nil
}
