// Sharding: horizontal partitioning with scatter-gather queries.
//
// A synthetic detection collection is partitioned across four DB shards
// by a deterministic hash of each patch id. The serving layer plans
// every query once, runs the plan fragment on all shards in parallel
// (similarity joins additionally fan out one task per shard pair), and
// merges at the top: counts sum, ordered top-k rows k-way heap-merge,
// identity clusters re-cluster over the union of pair lists.
//
// The walkthrough shows the scatter plans, the per-shard storage
// breakdown, cache invalidation riding on the composite version, and —
// the contract everything rests on — a one-shard service answering
// byte-identically to an unsharded one.
//
//	go run ./examples/sharding
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/service"
)

const col = "city.dets"

func schema() core.Schema {
	return core.Schema{
		Data: core.Pixels(0, 0),
		Fields: []core.Field{
			{Name: "label", Kind: core.KindStr},
			{Name: "score", Kind: core.KindFloat},
			{Name: "emb", Kind: core.KindVec, VecDim: 8},
		},
	}
}

// patch generates detection i: one of five embedding clusters (so
// similarity joins find identities) and low-cardinality labels/scores
// (so filters and order-bys tie across shards).
func patch(i int) *core.Patch {
	emb := make([]float32, 8)
	for d := range emb {
		emb[d] = float32((i%5)*10) + float32((i/5)%4)*0.02
	}
	return &core.Patch{
		Ref: core.Ref{Source: "cam", Frame: uint64(i)},
		Meta: core.Metadata{
			"label": core.StrV([]string{"car", "pedestrian", "bus"}[i%3]),
			"score": core.FloatV(float64(i%10) / 10),
			"emb":   core.VecV(emb),
		},
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "deeplens-sharding")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()
	const rows = 600

	// ---- 1. partition a collection across four shards ----
	sdb, err := core.OpenSharded(filepath.Join(dir, "sharded"), 4, exec.New(exec.CPU))
	if err != nil {
		return err
	}
	defer sdb.Close()
	sc, err := sdb.CreateCollection(col, schema())
	if err != nil {
		return err
	}
	for i := 0; i < rows; i++ {
		if err := sc.Append(patch(i)); err != nil {
			return err
		}
	}
	fmt.Printf("ingested %d detections across %d shards:\n", sc.Len(), sdb.NumShards())
	for _, si := range sdb.ShardInfos() {
		fmt.Printf("  shard %d: %d rows\n", si.Shard, si.Rows)
	}

	svc, err := service.NewSharded(sdb, service.Config{Workers: 2})
	if err != nil {
		return err
	}
	defer svc.Close()

	// ---- 2. scatter-gather query shapes ----
	str := func(s string) *string { return &s }
	fmt.Println("\nscatter-gather plans:")
	for _, q := range []struct {
		what string
		req  service.Request
	}{
		{"count pedestrians (scan fans out, counts sum)",
			service.Request{Collection: col, Filter: &service.FilterSpec{Field: "label", Str: str("pedestrian")}}},
		{"top-5 by score (per-shard sort, k-way heap merge)",
			service.Request{Collection: col, OrderBy: "score", Desc: true, Limit: 5}},
		{"similarity self-join (4 local + 6 cross-shard tasks)",
			service.Request{Collection: col, SimJoin: &service.SimJoinSpec{Field: "emb", Eps: 0.2}}},
		{"distinct identities (pairs re-cluster at the gather stage)",
			service.Request{Collection: col, SimJoin: &service.SimJoinSpec{Field: "emb", Eps: 0.2, MinCluster: 2}, Distinct: true}},
	} {
		r, err := svc.Query(ctx, q.req)
		if err != nil {
			return err
		}
		fmt.Printf("  %-62s value=%-5d\n    plan: %s\n", q.what, r.Value, r.Plan)
	}

	// ---- 3. composite-version cache invalidation ----
	countReq := service.Request{Collection: col}
	r1, err := svc.Query(ctx, countReq)
	if err != nil {
		return err
	}
	r2, err := svc.Query(ctx, countReq)
	if err != nil {
		return err
	}
	if err := sc.Append(patch(rows)); err != nil { // lands on exactly one shard
		return err
	}
	r3, err := svc.Query(ctx, countReq)
	if err != nil {
		return err
	}
	fmt.Printf("\ncache invalidation: count=%d (hit=%v) -> append one patch -> count=%d (hit=%v)\n",
		r2.Value, r2.CacheHit, r3.Value, r3.CacheHit)
	if r1.Fingerprint == r3.Fingerprint {
		return fmt.Errorf("composite version did not move")
	}

	// ---- 4. the N=1 contract: sharded(1) == unsharded, byte for byte ----
	db, err := core.Open(filepath.Join(dir, "plain.db"), exec.New(exec.CPU))
	if err != nil {
		return err
	}
	defer db.Close()
	pc, err := db.CreateCollection(col, schema())
	if err != nil {
		return err
	}
	one, err := core.OpenSharded(filepath.Join(dir, "one"), 1, exec.New(exec.CPU))
	if err != nil {
		return err
	}
	defer one.Close()
	oc, err := one.CreateCollection(col, schema())
	if err != nil {
		return err
	}
	for i := 0; i < rows; i++ {
		if err := pc.Append(patch(i)); err != nil {
			return err
		}
		if err := oc.Append(patch(i)); err != nil {
			return err
		}
	}
	plainSvc, err := service.New(db, service.Config{Workers: 1})
	if err != nil {
		return err
	}
	defer plainSvc.Close()
	oneSvc, err := service.NewSharded(one, service.Config{Workers: 1})
	if err != nil {
		return err
	}
	defer oneSvc.Close()
	req := service.Request{Collection: col, SimJoin: &service.SimJoinSpec{Field: "emb", Eps: 0.2, MinCluster: 2}, Distinct: true}
	pr, err := plainSvc.Query(ctx, req)
	if err != nil {
		return err
	}
	or, err := oneSvc.Query(ctx, req)
	if err != nil {
		return err
	}
	fmt.Printf("\nN=1 equivalence: unsharded value=%d plan=%q\n                 sharded-1 value=%d plan=%q\n",
		pr.Value, pr.Plan, or.Value, or.Plan)
	if pr.Value != or.Value || pr.Plan != or.Plan || pr.Fingerprint != or.Fingerprint {
		return fmt.Errorf("N=1 path diverged from unsharded execution")
	}

	st := svc.Stats()
	fmt.Printf("\nservice stats: %d scatter queries -> %d tasks, merge %.2f ms total\n",
		st.ScatterQueries, st.ScatterTasks, st.MergeTimeMS)
	return nil
}
