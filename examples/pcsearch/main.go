// PCSearch: the paper's q1 and q5 over a personal-computer image corpus —
// near-duplicate detection with a ball-tree index over matching features,
// and string lookup over OCR output.
//
//	go run ./examples/pcsearch
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/vision"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "deeplens-pcsearch")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	cfg := dataset.Default()
	cfg.PCImages = 120
	pc := dataset.NewPC(cfg)
	imgs := make([]*codec.Image, len(pc.Images))
	for i := range pc.Images {
		imgs[i] = pc.Images[i].Image
	}

	db, err := core.Open(filepath.Join(dir, "deeplens.db"), exec.New(exec.CPU))
	if err != nil {
		return err
	}
	defer db.Close()

	// ETL 1: whole-image patches with the near-duplicate matching feature.
	it := core.FromImages("pc", imgs)
	it = core.GridHistogramTransformer(3, it)
	it = core.DropData(it)
	images, err := db.Materialize("pc.images", core.Schema{
		Data: core.Pixels(0, 0),
		Fields: []core.Field{
			{Name: "frameno", Kind: core.KindInt},
			{Name: "ghist", Kind: core.KindVec, VecDim: 64},
		},
	}, it)
	if err != nil {
		return err
	}

	// ETL 2: OCR words from every image.
	wordsIt := core.OCRGenerator(vision.NewDocumentOCR(), core.FromImages("pc", imgs))
	wordsIt = core.DropData(wordsIt)
	words, err := db.Materialize("pc.words", core.OCRSchema(), wordsIt)
	if err != nil {
		return err
	}
	fmt.Printf("corpus: %d images, %d recognized words\n", images.Len(), words.Len())

	// q1: near-duplicates via a ball-tree index on the matching feature.
	if _, err := db.BuildIndex(images, "ghist", core.IdxBallTree); err != nil {
		return err
	}
	idx, err := db.Index(images, "ghist", core.IdxBallTree)
	if err != nil {
		return err
	}
	ps, _ := images.Patches()
	pairs, err := core.SimilarityJoinIndexed(db, ps, images, idx, core.SimilarityJoinOpts{
		LeftField: "ghist", RightField: "ghist", Eps: 0.066, DedupUnordered: true})
	if err != nil {
		return err
	}
	fmt.Printf("q1: %d near-duplicate pairs found (%d planted by the generator):\n",
		len(pairs), len(pc.NearDupPairs))
	for i, pr := range pairs {
		fmt.Printf("  image %d ~ image %d\n", pr[0].Ref.Frame, pr[1].Ref.Frame)
		if i >= 4 {
			break
		}
	}

	// q5: first image containing a target string.
	target := pc.Vocabulary[2]
	hit, err := core.Drain(core.Limit(core.OrderBy(core.Select(words.Scan(),
		core.FieldEq("text", core.StrV(target))), "frameno", true), 1))
	if err != nil {
		return err
	}
	if len(hit) == 0 {
		fmt.Printf("q5: %q not found in the corpus\n", target)
		return nil
	}
	frame := hit[0][0].Meta["frameno"].I
	fmt.Printf("q5: first image containing %q is image %d", target, frame)
	// Verify against generator ground truth.
	for _, w := range pc.Images[frame].Words {
		if w == target {
			fmt.Print(" (verified against ground truth)")
			break
		}
	}
	fmt.Println()
	return nil
}
