// Quickstart: the paper's Example 1 end to end.
//
// A CCTV feed of a parking lot is ingested into a Segmented File store,
// loaded through the uniform Load API with a temporal filter, run through
// the SSD-sim object detector (a patch generator), and the resulting
// patch collection is queried relationally: count the cars per frame.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/kv"
	"repro/internal/video"
	"repro/internal/vision"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "deeplens-quickstart")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// 1. A synthetic parking-lot camera: 200 frames of cars and pedestrians.
	cfg := dataset.Default()
	cfg.TrafficFrames = 200
	traffic := dataset.NewTraffic(cfg)

	// 2. Ingest into the Segmented File storage format: 32-frame clips,
	//    inter-frame compressed, bucketed by start frame.
	st, err := kv.Open(filepath.Join(dir, "video.db"))
	if err != nil {
		return err
	}
	defer st.Close()
	bucket, err := st.Bucket("parkinglot")
	if err != nil {
		return err
	}
	store := video.NewSegmentedFile(bucket, codec.QualityHigh, codec.DefaultGOP, 32)
	if err := video.Ingest(store, uint64(traffic.Frames), func(i uint64) *codec.Image {
		img, _ := traffic.Render(int(i))
		return img
	}); err != nil {
		return err
	}
	stored, _ := store.StorageBytes()
	raw := int64(traffic.Frames) * int64(cfg.TrafficW*cfg.TrafficH*3)
	fmt.Printf("ingested %d frames: %.1f KiB stored (%.0fx compression)\n",
		traffic.Frames, float64(stored)/1024, float64(raw)/float64(stored))

	// 3. Load frames 40..120 (the temporal filter pushes down to whole
	//    clips), generate detection patches, and materialize them.
	db, err := core.Open(filepath.Join(dir, "deeplens.db"), exec.New(exec.CPU))
	if err != nil {
		return err
	}
	defer db.Close()
	frames := core.LoadVideo("parkinglot", store, core.FrameRange{Lo: 40, Hi: 120})
	det := vision.NewDetector(db.Device(), 42)
	dets := core.DetectGenerator(det, frames)
	dets = core.DropData(dets)
	col, err := db.Materialize("parkinglot.dets", core.DetectionSchema(), dets)
	if err != nil {
		return err
	}
	fmt.Printf("materialized %d detection patches from frames [40,120)\n", col.Len())

	// 4. Query: cars per frame — a filter plus a group-by over metadata.
	it := core.Select(col.Scan(), core.FieldEq("label", core.StrV("car")))
	groups, err := core.Drain(core.GroupCount(it, "frameno"))
	if err != nil {
		return err
	}
	busiest, most := int64(-1), int64(0)
	var total int64
	for _, g := range groups {
		n := g[0].Meta["count"].I
		total += n
		if n > most {
			most, busiest = n, g[0].Meta["group"].I
		}
	}
	fmt.Printf("cars per frame over %d frames: %d total, busiest frame %d (%d cars)\n",
		len(groups), total, busiest, most)

	// 5. Plan-time validation: a filter on a label the detector can never
	//    produce is rejected before execution.
	if _, err := db.PlanFilter(col, "label", core.StrV("bicycle")); err != nil {
		fmt.Printf("type system rejected an impossible filter: %v\n", err)
	}
	return nil
}
