// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure in the DeepLens paper's evaluation (§7), plus
// microbenchmarks for the substrates those experiments are built from.
//
//	go test -bench=. -benchmem
//
// Each BenchmarkFigN runs the corresponding experiment at a reduced scale
// (the deeplens-bench command runs them at full scale and prints the
// paper-style tables; EXPERIMENTS.md records paper-vs-measured values).
package repro

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/balltree"
	"repro/internal/bench"
	"repro/internal/btree"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/hashidx"
	"repro/internal/kv"
	"repro/internal/rtree"
	"repro/internal/service"
	"repro/internal/vision"
)

// benchCfg is the shared reduced-scale configuration for the experiment
// benchmarks.
func benchCfg() dataset.Config {
	c := dataset.Default()
	c.TrafficFrames = 240
	c.PCImages = 150
	c.FootballClips = 2
	c.FootballClipLen = 30
	return c
}

var (
	benchEnv     *bench.Env
	benchEnvErr  error
	benchEnvOnce sync.Once
)

func sharedEnv(b *testing.B) *bench.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		dir, err := os.MkdirTemp("", "dl-root-bench")
		if err != nil {
			benchEnvErr = err
			return
		}
		benchEnv, benchEnvErr = bench.NewEnv(dir, benchCfg(), exec.New(exec.CPU))
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

// ------------------------------------------------ experiment benchmarks ----

// BenchmarkFig2Encoding regenerates Figure 2 (storage vs accuracy per
// encoding level).
func BenchmarkFig2Encoding(b *testing.B) {
	cfg := benchCfg()
	cfg.TrafficFrames = 120
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig2Encoding(cfg, 10, exec.New(exec.CPU))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig3Formats regenerates Figure 3 (temporal-filter latency per
// storage format).
func BenchmarkFig3Formats(b *testing.B) {
	cfg := benchCfg()
	cfg.TrafficFrames = 150
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig3Formats(cfg, 20, exec.New(exec.CPU)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Indexes regenerates Figure 4 (query time with vs without
// indexes for q1-q6).
func BenchmarkFig4Indexes(b *testing.B) {
	e := sharedEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig4Indexes(e)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig5Pipeline regenerates Figure 5 (full pipeline incl.
// on-the-fly index construction).
func BenchmarkFig5Pipeline(b *testing.B) {
	e := sharedEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig5Pipeline(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6IndexBuild regenerates Figure 6 (index construction cost).
func BenchmarkFig6IndexBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig6IndexBuild([]int{1000, 5000, 10000}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7BallTreeJoin regenerates Figure 7 (ball-tree join cost vs
// indexed-relation size, low vs high dimension).
func BenchmarkFig7BallTreeJoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig7BallTreeJoin([]int{1000, 5000, 10000}, []int{4, 64}, 1000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Devices regenerates Figure 8 (CPU/AVX/GPU execution).
func BenchmarkFig8Devices(b *testing.B) {
	cfg := benchCfg()
	cfg.TrafficFrames = 100
	cfg.PCImages = 80
	cfg.FootballClips = 1
	cfg.FootballClipLen = 20
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig8Devices(cfg, []exec.Kind{exec.CPU, exec.AVX, exec.GPU})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 18 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkTable1Plans regenerates Table 1 (q4 plan order: accuracy vs
// runtime).
func BenchmarkTable1Plans(b *testing.B) {
	e := sharedEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1Plans(e)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 2 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkAblationLSH regenerates the exact-vs-approximate matching
// ablation (§7.3).
func BenchmarkAblationLSH(b *testing.B) {
	e := sharedEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationLSH(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSegment regenerates the clip-length sweep (§7.1).
func BenchmarkAblationSegment(b *testing.B) {
	cfg := benchCfg()
	cfg.TrafficFrames = 128
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationSegment(cfg, []uint64{8, 32, 128}, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceParallelQueries measures serving throughput at 1/4/16
// workers with cold vs. warm caches over a mixed query workload
// (indexed filter, scan filter, similarity join). Cold bypasses the
// result cache (every request executes a plan); warm serves fingerprint
// hits — the cross-query reuse the serving subsystem exists for.
func BenchmarkServiceParallelQueries(b *testing.B) {
	e := sharedEnv(b)
	str := func(s string) *string { return &s }
	workload := []service.Request{
		{Collection: bench.ColTrafficDets,
			Filter: &service.FilterSpec{Field: "label", Str: str("pedestrian"), UseIndex: true}},
		{Collection: bench.ColTrafficDets,
			Filter: &service.FilterSpec{Field: "label", Str: str("car")}},
		{Collection: bench.ColPCImages,
			SimJoin: &service.SimJoinSpec{Field: "ghist", Eps: 0.066, UseIndex: true}},
	}
	for _, workers := range []int{1, 4, 16} {
		for _, mode := range []string{"cold", "warm"} {
			b.Run(fmt.Sprintf("workers=%d/%s", workers, mode), func(b *testing.B) {
				svc, err := service.New(e.DB, service.Config{
					Workers:    workers,
					QueueDepth: 1024, // absorb the bench harness's parallelism
					ModelSeed:  bench.ModelSeed,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer svc.Close()
				ctx := context.Background()
				reqs := make([]service.Request, len(workload))
				copy(reqs, workload)
				if mode == "cold" {
					for i := range reqs {
						reqs[i].NoCache = true
					}
				} else {
					for _, r := range reqs { // prime the result cache
						if _, err := svc.Query(ctx, r); err != nil {
							b.Fatal(err)
						}
					}
				}
				var next atomic.Int64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						req := reqs[int(next.Add(1))%len(reqs)]
						if _, err := svc.Query(ctx, req); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}

// ------------------------------------------------- substrate benchmarks ----

// BenchmarkBTreeInsert measures on-disk B+ tree construction (one Figure 6
// series in isolation).
func BenchmarkBTreeInsert(b *testing.B) {
	p, err := kv.OpenPager(filepath.Join(b.TempDir(), "b.db"))
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	t := btree.New(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := t.Put(kv.U64Key(uint64(i)), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHashInsert measures extendible-hash construction.
func BenchmarkHashInsert(b *testing.B) {
	p, err := kv.OpenPager(filepath.Join(b.TempDir(), "h.db"))
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	ix, err := hashidx.Create(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ix.Put(kv.U64Key(uint64(i)), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRTreeInsert measures R-tree quadratic-split construction.
func BenchmarkRTreeInsert(b *testing.B) {
	t := rtree.New(2)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		if err := t.Insert(rtree.BBox2D(x, y, x+10, y+10), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBallTreeBuild measures ball-tree construction over 64-d
// features.
func BenchmarkBallTreeBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]balltree.Point, 5000)
	for i := range pts {
		v := make([]float32, 64)
		for d := range v {
			v[d] = float32(rng.NormFloat64())
		}
		pts[i] = balltree.Point{Vec: v, ID: uint64(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := balltree.Build(pts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBallTreeRange measures threshold probes against a built tree.
func BenchmarkBallTreeRange(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]balltree.Point, 10000)
	for i := range pts {
		v := make([]float32, 64)
		for d := range v {
			v[d] = float32(rng.NormFloat64())
		}
		pts[i] = balltree.Point{Vec: v, ID: uint64(i)}
	}
	t, err := balltree.Build(pts)
	if err != nil {
		b.Fatal(err)
	}
	q := pts[0].Vec
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		t.RangeSearch(q, 2.0, func(balltree.Point, float64) bool { n++; return true })
	}
}

// BenchmarkDLVEncode measures inter-frame video encoding throughput.
func BenchmarkDLVEncode(b *testing.B) {
	cfg := benchCfg()
	cfg.TrafficFrames = 32
	tr := dataset.NewTraffic(cfg)
	frames := make([]*codec.Image, cfg.TrafficFrames)
	var pixels int64
	for t := range frames {
		frames[t], _ = tr.Render(t)
		pixels += int64(frames[t].RawSize())
	}
	b.SetBytes(pixels)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.EncodeDLV(frames, codec.QualityHigh, codec.DefaultGOP); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDLVDecode measures sequential decode throughput.
func BenchmarkDLVDecode(b *testing.B) {
	cfg := benchCfg()
	cfg.TrafficFrames = 32
	tr := dataset.NewTraffic(cfg)
	frames := make([]*codec.Image, cfg.TrafficFrames)
	var pixels int64
	for t := range frames {
		frames[t], _ = tr.Render(t)
		pixels += int64(frames[t].RawSize())
	}
	enc, err := codec.EncodeDLV(frames, codec.QualityHigh, codec.DefaultGOP)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(pixels)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.DecodeDLV(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetector measures the SSD-sim detector (the dominant ETL cost).
func BenchmarkDetector(b *testing.B) {
	cfg := benchCfg()
	tr := dataset.NewTraffic(cfg)
	img, _ := tr.Render(10)
	det := vision.NewDetector(exec.New(exec.CPU), 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Detect(img)
	}
}

// BenchmarkGEMMPerDevice compares the execution backends on the NN
// workhorse kernel.
func BenchmarkGEMMPerDevice(b *testing.B) {
	const m, n, k = 128, 128, 128
	rng := rand.New(rand.NewSource(4))
	a := make([]float32, m*k)
	bb := make([]float32, k*n)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
	}
	for i := range bb {
		bb[i] = float32(rng.NormFloat64())
	}
	for _, kind := range []exec.Kind{exec.CPU, exec.AVX, exec.GPU} {
		dev := exec.New(kind)
		b.Run(kind.String(), func(b *testing.B) {
			c := make([]float32, m*n)
			b.SetBytes(4 * (m*k + k*n + m*n))
			for i := 0; i < b.N; i++ {
				dev.GEMM(m, n, k, a, bb, c)
			}
		})
	}
}

// BenchmarkSimilarityJoinMethods compares the physical similarity-join
// operators the optimizer chooses between.
func BenchmarkSimilarityJoinMethods(b *testing.B) {
	e := sharedEnv(b)
	col, err := e.DB.Collection(bench.ColTrafficDets)
	if err != nil {
		b.Fatal(err)
	}
	peds, err := e.DB.ExecuteFilter(col, "label", core.StrV("pedestrian"), core.FilterScan)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.SimilarityJoinOpts{LeftField: "emb", RightField: "emb", Eps: 0.15, DedupUnordered: true}
	b.Run(fmt.Sprintf("nested-n%d", len(peds)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SimilarityJoinNested(peds, peds, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("batched-n%d", len(peds)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SimilarityJoinBatched(e.DB, peds, peds, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("onthefly-n%d", len(peds)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SimilarityJoinOnTheFly(peds, peds, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
